"""The supervisor: detect, resurrect, and rate-limit serve-layer failures.

:class:`Supervisor` closes the self-healing loop around the
:class:`~repro.serve.engine.ShardedServeEngine` (see
``docs/self_healing.md`` for the full tree).  After every committed batch
the harness calls :meth:`Supervisor.review` with the epoch's
:class:`~repro.serve.engine.ServeBatchResult`, and the supervisor:

1. **respawns** every shard that produced no outcome (crashed thread or
   hang past the epoch deadline) via
   :meth:`~repro.serve.engine.ShardedServeEngine.replace_shard` — the
   replacement starts from the canonical graph, which is exactly what the
   checkpoint plus WAL tail reconstruct, so state is *re-derived*, never
   replayed from batch 0;
2. **resolves** earlier rescues: a rescued source whose sessions came back
   ``LIVE`` records a breaker success; one that degraded again records a
   failure (which re-trips a half-open breaker);
3. **counts** each new outage exactly once per source on that source's
   :class:`~repro.serve.health.CircuitBreaker`;
4. **rescues** what the breakers allow: degraded sessions are requeued
   ``DEGRADED -> PENDING`` and re-registered on the (possibly respawned)
   owning shard, re-entering the normal pending -> warming -> live
   lifecycle.  A refused rescue leaves the sessions degraded; the harness
   serves their reads from the result cache's last-known answers under
   the bounded-staleness contract.

The supervisor runs entirely on the harness thread — it owns no thread of
its own, so "supervision" costs one registry scan per batch and there is
no monitor/ingest race to reason about.
"""

from __future__ import annotations

import time
from dataclasses import dataclass
from typing import Callable, Dict, List, Optional, Set

from repro.serve.engine import ServeBatchResult, ShardedServeEngine
from repro.serve.health import (
    BreakerState,
    CircuitBreaker,
    HealthMonitor,
    ShardHealth,
)
from repro.serve.session import QuerySession, SessionRegistry, SessionState


@dataclass
class SupervisorConfig:
    """Tuning knobs for failure detection and resurrection pacing.

    ``failure_threshold`` consecutive failures of one source trip its
    breaker; ``breaker_cooldown`` seconds later the breaker offers one
    half-open trial resurrection.  ``hang_timeout`` is the health probe's
    stuck-command bound (diagnostic; the engine's ``epoch_deadline`` is
    what actually detects hangs at the barrier).  ``max_staleness`` is the
    degraded-read contract: the oldest last-known answer, in epochs, the
    harness may serve while a breaker is open.
    """

    failure_threshold: int = 3
    breaker_cooldown: float = 30.0
    hang_timeout: float = 10.0
    max_staleness: int = 8

    def validate(self) -> None:
        if self.failure_threshold <= 0:
            raise ValueError("failure_threshold must be positive")
        if self.breaker_cooldown <= 0:
            raise ValueError("breaker_cooldown must be positive")
        if self.hang_timeout <= 0:
            raise ValueError("hang_timeout must be positive")
        if self.max_staleness < 0:
            raise ValueError("max_staleness must be non-negative")


class Supervisor:
    """Per-batch failure review over the shard pool and session registry."""

    def __init__(
        self,
        engine: ShardedServeEngine,
        registry: SessionRegistry,
        config: Optional[SupervisorConfig] = None,
        clock: Callable[[], float] = time.monotonic,
    ) -> None:
        self.engine = engine
        self.registry = registry
        self.config = config or SupervisorConfig()
        self.config.validate()
        self.clock = clock
        self.monitor = HealthMonitor(self.config.hang_timeout, clock)
        #: one breaker per source that ever failed (lazily created)
        self.breakers: Dict[int, CircuitBreaker] = {}
        #: sources with a counted outage, awaiting a successful rescue
        self._awaiting: Dict[int, str] = {}
        #: sources rescued this/last review whose outcome is unresolved
        self._pending: Set[int] = set()
        # cumulative observability counters
        self.shard_restarts = 0
        self.session_resurrections = 0
        self.blocked_rescues = 0
        self.degraded_reads = 0
        self.reviews = 0
        # engine raises at the barrier unless told a supervisor will
        # handle shard loss after the batch
        engine.tolerate_shard_failures = True

    # ------------------------------------------------------------------
    def breaker(self, source: int) -> CircuitBreaker:
        """The breaker guarding ``source``'s resurrection (lazily built)."""
        breaker = self.breakers.get(source)
        if breaker is None:
            breaker = CircuitBreaker(
                failure_threshold=self.config.failure_threshold,
                cooldown=self.config.breaker_cooldown,
                clock=self.clock,
            )
            self.breakers[source] = breaker
        return breaker

    def breaker_open(self, source: int) -> bool:
        """Is ``source``'s circuit currently refusing normal service?

        True for ``OPEN`` *and* ``HALF_OPEN``: until the trial
        resurrection is confirmed live, ad-hoc reads for the source stay
        on the degraded path.
        """
        breaker = self.breakers.get(source)
        return breaker is not None and breaker.state is not BreakerState.CLOSED

    # ------------------------------------------------------------------
    def review(self, result: ServeBatchResult) -> Dict[str, int]:
        """One post-batch supervision pass; returns this pass's tallies."""
        self.reviews += 1
        tallies = {"restarted": 0, "resurrected": 0, "blocked": 0,
                   "confirmed": 0, "new_outages": 0}
        telemetry = self.engine.telemetry

        # 1. respawn shards that produced no outcome this epoch — dumping
        # a post-mortem bundle FIRST, while the dead worker's flight ring
        # still holds its final events and, crucially, while the dead
        # worker itself is still in the pool: a process worker's
        # post_mortem() harvests its on-disk flight-ring spill (the
        # child's last events survive the loss of its address space)
        # alongside exit code, last heartbeat, and pending inbox depth
        if result.failed_shards and telemetry is not None:
            telemetry.flight.dump(
                "shard-crash",
                {
                    "epoch": result.epoch,
                    "failed_shards": [
                        {"shard": index, "reason": reason}
                        for index, reason in result.failed_shards
                    ],
                    "post_mortem": [
                        self.engine.shards[index].post_mortem()
                        for index, _ in result.failed_shards
                        if 0 <= index < len(self.engine.shards)
                    ],
                },
            )
        for index, reason in result.failed_shards:
            self.engine.replace_shard(index)
            self.shard_restarts += 1
            tallies["restarted"] += 1
            if telemetry is not None:
                telemetry.point(
                    "supervisor.respawn",
                    shard=index, epoch=result.epoch, reason=reason,
                )

        # 2. one registry scan: who is degraded, who came (back) live
        degraded: Dict[int, List[QuerySession]] = {}
        reasons: Dict[int, str] = {}
        live_sources: Set[int] = set()
        for session in self.registry:
            source = session.query.source
            if session.state is SessionState.DEGRADED:
                degraded.setdefault(source, []).append(session)
                reasons.setdefault(
                    source, session.degraded_reason or "unknown failure"
                )
            elif session.state is SessionState.LIVE:
                live_sources.add(source)

        # 3. resolve earlier rescues (trial or regular) by what the scan saw
        for source in list(self._pending):
            if source in degraded:
                # the rescue itself failed: a half-open trial re-trips,
                # a closed-state retry extends the failure streak
                self._breaker_op(source, "record_failure", telemetry)
                self._pending.discard(source)
                self._awaiting[source] = reasons[source]
            elif source in live_sources:
                self._breaker_op(source, "record_success", telemetry)
                self._pending.discard(source)
                self._awaiting.pop(source, None)
                tallies["confirmed"] += 1
            # else: still warming (no batch since the requeue) — keep waiting

        # 4. count each brand-new outage once on its source's breaker
        for source in degraded:
            if source not in self._awaiting and source not in self._pending:
                self._breaker_op(source, "record_failure", telemetry)
                self._awaiting[source] = reasons[source]
                tallies["new_outages"] += 1

        # 5. rescue whatever the breakers allow
        for source in list(self._awaiting):
            if source in self._pending:
                continue  # resolved-failed above; retry next review
            sessions = [s for s in degraded.get(source, [])
                        if s.state is SessionState.DEGRADED]
            if not sessions:
                # every degraded session was closed meanwhile; outage over
                self._awaiting.pop(source)
                continue
            if not self._breaker_op(source, "allow", telemetry):
                self.blocked_rescues += 1
                tallies["blocked"] += 1
                if telemetry is not None:
                    telemetry.point(
                        "supervisor.blocked",
                        source=source, epoch=result.epoch,
                        reason=reasons.get(source)
                        or self._awaiting.get(source, "unknown"),
                    )
                continue
            shard = self.engine.shard_of(source)
            for session in sessions:
                session.transition(SessionState.PENDING)
                shard.submit_register(session, block=True)
                self.session_resurrections += 1
                tallies["resurrected"] += 1
                if telemetry is not None:
                    telemetry.point(
                        "supervisor.resurrect",
                        session=session.id, source=source,
                        shard=shard.index, epoch=result.epoch,
                    )
            self._pending.add(source)
        return tallies

    def _breaker_op(self, source: int, op: str, telemetry):
        """Run one breaker operation, emitting a point on a state change."""
        breaker = self.breaker(source)
        before = breaker.state
        outcome = getattr(breaker, op)()
        after = breaker.state
        if telemetry is not None and after is not before:
            telemetry.point(
                "supervisor.breaker",
                source=source,
                from_state=before.value,
                to_state=after.value,
                op=op,
            )
        return outcome

    # ------------------------------------------------------------------
    def health(self) -> Dict[int, ShardHealth]:
        """Point-in-time probe of the current shard pool."""
        return self.monitor.probe_all(self.engine.shards)

    def stats(self) -> Dict[str, object]:
        """Cumulative supervision summary (stats/telemetry surface)."""
        return {
            "reviews": self.reviews,
            "shard_restarts": self.shard_restarts,
            "session_resurrections": self.session_resurrections,
            "blocked_rescues": self.blocked_rescues,
            "degraded_reads": self.degraded_reads,
            "awaiting_rescue": len(self._awaiting),
            "pending_confirmation": len(self._pending),
            "breakers": {
                source: breaker.as_dict()
                for source, breaker in sorted(self.breakers.items())
            },
            "health": {
                index: verdict.value
                for index, verdict in sorted(self.health().items())
            },
        }

    def __repr__(self) -> str:
        return (
            f"Supervisor(restarts={self.shard_restarts}, "
            f"resurrections={self.session_resurrections}, "
            f"breakers={len(self.breakers)})"
        )

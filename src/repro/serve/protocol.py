"""Scripted request protocol for ``repro serve``.

A serve script is a line-oriented command stream (stdin or a file) driving
one :class:`~repro.serve.harness.ServeHarness` — the textual surface the
CLI exposes and the end-to-end tests replay.  Grammar (one command per
line, ``#`` starts a comment)::

    register S D        register standing query Q(S -> D); prints its session id
    deregister SID      close session SID
    add U V W           buffer edge addition U --W--> V
    delete U V [W]      buffer edge deletion U -> V
    commit              commit buffered updates as one batch; prints answers
    query S D           one-shot cached read of Q(S -> D); reports the
                        ``degraded`` flag (and staleness) while the
                        source's circuit breaker is open
    query SID           the same read addressed through a standing
                        session id (a closed or unknown id is a typed
                        ``SessionClosedError``, not a crash)
    explain S D [EPOCH] contribution provenance of Q(S -> D) at EPOCH
                        (default: latest epoch that answered the pair)
    explain SID [EPOCH] provenance addressed through a session id
    control [ACTION]    adaptive-controller surface (``serve --adaptive``):
                        ``status`` (default), ``freeze``, ``thaw``, or
                        ``log [N]`` for the last N audit decisions
    stats               print the harness summary
    close               stop serving (implicit at end of script)

Commands never abort the script on *typed* serving errors — an admission
rejection or duplicate registration is an expected protocol outcome, so it
is reported as an ``error`` event and execution continues.  Anything else
(a genuine bug) propagates.
"""

from __future__ import annotations

import shlex
from typing import Dict, Iterable, List

from repro.errors import ControlError, ReproError
from repro.graph.batch import EdgeUpdate, add, delete
from repro.serve.harness import ServeHarness


def _is_session_id(token: str) -> bool:
    """True when a query/explain operand addresses a session, not a vertex."""
    return not token.lstrip("-").isdigit()


class ScriptError(ReproError):
    """A serve script line could not be parsed."""

    def __init__(self, lineno: int, line: str, detail: str) -> None:
        super().__init__(f"serve script line {lineno}: {detail}: {line!r}")
        self.lineno = lineno


def parse_script(lines: Iterable[str]) -> List[List[str]]:
    """Tokenize a script into commands, dropping comments and blanks."""
    commands: List[List[str]] = []
    for lineno, raw in enumerate(lines, start=1):
        tokens = shlex.split(raw, comments=True)
        if not tokens:
            continue
        commands.append([str(lineno)] + tokens)
    return commands


class ScriptRunner:
    """Execute a parsed serve script against a harness.

    Every command produces one event dict (``{"cmd": ..., "ok": ...}``
    plus command-specific fields); :attr:`events` accumulates them so the
    CLI can print as it goes and tests can assert on the whole run.
    """

    def __init__(self, harness: ServeHarness) -> None:
        self.harness = harness
        self.pending: List[EdgeUpdate] = []
        self.events: List[Dict[str, object]] = []
        self.closed = False

    # ------------------------------------------------------------------
    def run(self, lines: Iterable[str]) -> List[Dict[str, object]]:
        """Run a whole script; closes the harness at the end."""
        for command in parse_script(lines):
            self.step(command)
            if self.closed:
                break
        self.close()
        return self.events

    def step(self, command: List[str]) -> Dict[str, object]:
        """Execute one tokenized command (``[lineno, verb, *args]``)."""
        lineno = int(command[0])
        verb, args = command[1], command[2:]
        handler = getattr(self, f"_cmd_{verb.replace('-', '_')}", None)
        if handler is None:
            raise ScriptError(lineno, " ".join(command[1:]), "unknown command")
        try:
            event = handler(args)
        except ReproError as exc:
            event = {"error": type(exc).__name__, "detail": str(exc)}
        except (TypeError, ValueError, IndexError) as exc:
            raise ScriptError(
                lineno, " ".join(command[1:]), f"bad arguments ({exc})"
            ) from exc
        event = {"cmd": verb, "ok": "error" not in event, **event}
        self.events.append(event)
        return event

    # ------------------------------------------------------------------
    # verbs
    # ------------------------------------------------------------------
    def _cmd_register(self, args: List[str]) -> Dict[str, object]:
        session = self.harness.register(int(args[0]), int(args[1]))
        return {"session": session.id, "state": session.state.value}

    def _cmd_deregister(self, args: List[str]) -> Dict[str, object]:
        session = self.harness.deregister(args[0])
        return {"session": session.id, "state": session.state.value}

    def _cmd_add(self, args: List[str]) -> Dict[str, object]:
        weight = float(args[2]) if len(args) > 2 else 1.0
        self.pending.append(add(int(args[0]), int(args[1]), weight))
        return {"pending": len(self.pending)}

    def _cmd_delete(self, args: List[str]) -> Dict[str, object]:
        weight = float(args[2]) if len(args) > 2 else 1.0
        self.pending.append(delete(int(args[0]), int(args[1]), weight))
        return {"pending": len(self.pending)}

    def _cmd_commit(self, args: List[str]) -> Dict[str, object]:
        updates, self.pending = self.pending, []
        result = self.harness.submit(updates)
        return {
            "snapshot": self.harness.snapshot_id,
            "updates": len(updates),
            "answers": {
                f"{s}->{d}": value for (s, d), value in sorted(result.answers.items())
            },
            "degraded": [source for source, _ in result.degraded],
        }

    def _cmd_query(self, args: List[str]) -> Dict[str, object]:
        if _is_session_id(args[0]):
            read = self.harness.read(session_id=args[0])
        else:
            read = self.harness.read(int(args[0]), int(args[1]))
        event: Dict[str, object] = {
            "answer": read.value,
            "hit_rate": self.harness.cache.stats.hit_rate,
            "degraded": read.degraded,
        }
        if read.degraded:
            event["stale_epochs"] = read.stale_epochs
        return event

    def _cmd_explain(self, args: List[str]) -> Dict[str, object]:
        if _is_session_id(args[0]):
            epoch = int(args[1]) if len(args) > 1 else None
            record = self.harness.explain(session_id=args[0], epoch=epoch)
        else:
            epoch = int(args[2]) if len(args) > 2 else None
            record = self.harness.explain(
                int(args[0]), int(args[1]), epoch=epoch
            )
        return {"explain": record}

    def _cmd_control(self, args: List[str]) -> Dict[str, object]:
        action = args[0] if args else "status"
        if action not in ("status", "freeze", "thaw", "log"):
            raise ValueError(f"unknown control action {action!r}")
        controller = self.harness.controller
        if controller is None:
            raise ControlError(
                "no runtime controller attached (run serve with --adaptive)"
            )
        if action == "freeze":
            reverts = controller.freeze(reason="script")
            return {"frozen": True, "reverts": len(reverts)}
        if action == "thaw":
            controller.thaw()
            return {"frozen": False}
        if action == "log":
            limit = int(args[1]) if len(args) > 1 else 0
            decisions = [decision.as_dict() for decision in controller.audit]
            if limit > 0:
                decisions = decisions[-limit:]
            return {"decisions": decisions}
        return {"control": controller.stats()}

    def _cmd_stats(self, args: List[str]) -> Dict[str, object]:
        return {"stats": self.harness.stats()}

    def _cmd_close(self, args: List[str]) -> Dict[str, object]:
        self.close()
        return {"closed": True}

    def close(self) -> None:
        """Close the harness once (idempotent; implicit at end of script)."""
        if not self.closed:
            self.harness.close()
            self.closed = True


def format_event(event: Dict[str, object]) -> str:
    """Render one runner event as a CLI output line."""
    verb = event.get("cmd", "?")
    if not event.get("ok", False):
        return f"{verb}: ERROR {event.get('error')}: {event.get('detail')}"
    parts = []
    for key, value in event.items():
        if key in ("cmd", "ok"):
            continue
        parts.append(f"{key}={value}")
    return f"{verb}: " + " ".join(parts) if parts else f"{verb}: ok"

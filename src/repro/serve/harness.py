"""The serving harness: sessions + shards + admission + cache + durability.

:class:`ServeHarness` is the one object a serving deployment holds.  It
owns the :class:`~repro.serve.session.SessionRegistry`, routes
registrations to the :class:`~repro.serve.engine.ShardedServeEngine`'s
workers behind the :class:`~repro.serve.admission.AdmissionController`,
pushes every committed batch through a WAL-backed
:class:`~repro.resilience.pipeline.ResilientPipeline` (so a crash mid-serve
is recoverable with :meth:`ServeHarness.resume`), fans per-batch answers
out to live sessions, and serves ad-hoc reads through the key-path-aware
:class:`~repro.serve.cache.ResultCache`.

Threading contract: the harness itself is driven from one caller thread
(registrations, batches, reads); the shard workers are the only other
threads and communicate exclusively through their bounded inboxes and
epoch outcomes.  Telemetry, when ambient or passed in, records queue
depths, session states, admission rejections, cache effectiveness and a
per-session answer-latency histogram (``serve_answer_seconds``).
"""

from __future__ import annotations

import contextlib
import queue
import time
from collections import deque
from dataclasses import dataclass
from typing import Callable, Deque, Dict, List, Optional, Union

from repro.algorithms.base import MonotonicAlgorithm
from repro.core.classification import KeyPathRule
from repro.errors import (
    ProvenanceMissError,
    QueryError,
    QueueSaturatedError,
    SessionClosedError,
    SessionNotFoundError,
)
from repro.graph.batch import EdgeUpdate, UpdateBatch
from repro.graph.dynamic import DynamicGraph
from repro.metrics import OpCounts, ResilienceCounters
from repro.obs.bridge import (
    record_answer_latency,
    record_controller,
    record_serve_admission,
    record_serve_cache,
    record_serve_state,
    record_supervision,
)
from repro.obs.provenance import ProvenanceRecorder
from repro.obs.telemetry import Telemetry, get_global_telemetry
from repro.query import PairwiseQuery
from repro.resilience.pipeline import ResilientPipeline
from repro.resilience.recovery import RecoveryManager, RecoveryResult
from repro.serve.admission import AdmissionController, ShedPolicy
from repro.serve.cache import ResultCache
from repro.serve.engine import ServeBatchResult, ShardedServeEngine
from repro.serve.session import (
    AnswerEvent,
    QuerySession,
    SessionRegistry,
    SessionState,
)
from repro.serve.supervision import Supervisor, SupervisorConfig


@dataclass(frozen=True)
class ReadResult:
    """One ad-hoc read with its freshness contract.

    ``degraded`` is True when the source's circuit was not closed — the
    answer came from the last-known store (``stale_epochs`` committed
    batches old; 0 means current-epoch) or, with nothing fresh enough
    remembered, from a direct recompute that still carries the flag so
    clients know the serving path for this source is unhealthy.
    """

    value: float
    degraded: bool = False
    stale_epochs: int = 0


class ServeHarness:
    """A live query-serving deployment over one streaming graph.

    Build with :meth:`open` (fresh) or :meth:`resume` (after a crash);
    register standing queries with :meth:`register`, stream updates with
    :meth:`submit`, read ad hoc with :meth:`query`, and :meth:`close` when
    done (also usable as a context manager).
    """

    def __init__(
        self,
        pipeline: ResilientPipeline,
        engine: ShardedServeEngine,
        admission: AdmissionController,
        registry: SessionRegistry,
        cache: ResultCache,
        supervisor: Supervisor,
        recovered: Optional[RecoveryResult] = None,
        clock: Callable[[], float] = time.monotonic,
    ) -> None:
        self.pipeline = pipeline
        self.engine = engine
        self.admission = admission
        self.sessions = registry
        self.cache = cache
        self.supervisor = supervisor
        #: the serving clock (shared with admission/supervision/engine);
        #: injectable so drivers like repro.bench.traffic can run the whole
        #: deployment on a virtual timeline
        self.clock = clock
        #: recovery report when this harness was built by :meth:`resume`
        self.recovered = recovered
        self.telemetry: Optional[Telemetry] = pipeline.telemetry
        #: contribution-provenance store (shared with the engine; None
        #: only when explicitly disabled at construction)
        self.provenance: Optional[ProvenanceRecorder] = engine.provenance
        self.batches_served = 0
        self.query_ops = OpCounts()
        #: adaptive controller, attached via :meth:`attach_controller`
        self.controller = None
        #: recent per-batch submit latencies (the answer-p99 window)
        self._latencies: Deque[float] = deque(maxlen=256)
        #: stale reads served over the lifetime of this harness
        self.stale_reads_served = 0
        #: max staleness age served since the last controller review
        self._staleness_high = 0

    # ------------------------------------------------------------------
    # construction
    # ------------------------------------------------------------------
    @classmethod
    def open(
        cls,
        directory: str,
        graph: DynamicGraph,
        algorithm: MonotonicAlgorithm,
        anchor: PairwiseQuery,
        num_shards: int = 2,
        rule: KeyPathRule = KeyPathRule.PRECISE,
        queue_bound: int = 64,
        policy: ShedPolicy = ShedPolicy.REJECT,
        registration_rate: float = 64.0,
        registration_burst: float = 32.0,
        delay_timeout: float = 2.0,
        dedupe: bool = False,
        cache_capacity: int = 128,
        clock: Callable[[], float] = time.monotonic,
        fault_hook=None,
        epoch_deadline: float = 30.0,
        supervision: Optional[SupervisorConfig] = None,
        provenance: Optional[ProvenanceRecorder] = None,
        backend: str = "thread",
        **pipeline_kwargs,
    ) -> "ServeHarness":
        """Start serving on a fresh state directory.

        ``anchor`` is the query whose state anchors checkpoints and the
        differential guard; ``supervision`` tunes failure detection and
        resurrection pacing (defaults to :class:`SupervisorConfig`);
        ``provenance`` overrides the default
        :class:`~repro.obs.provenance.ProvenanceRecorder` backing
        :meth:`explain`; ``backend`` picks the shard executor
        (``"thread"`` default, ``"process"`` for real OS processes over
        a shared-memory topology snapshot — see
        ``docs/process_shards.md``); ``pipeline_kwargs`` pass through to
        :class:`~repro.resilience.pipeline.ResilientPipeline` (e.g.
        ``checkpoint_every``, ``guard_every``, ``wal_sync``,
        ``write_hook``, ``telemetry``).
        """
        engine = ShardedServeEngine(
            graph,
            algorithm,
            anchor,
            num_shards=num_shards,
            rule=rule,
            queue_bound=queue_bound,
            fault_hook=fault_hook,
            epoch_deadline=epoch_deadline,
            clock=clock,
            provenance=provenance if provenance is not None
            else ProvenanceRecorder(),
            backend=backend,
        )
        engine.initialize()
        pipeline = ResilientPipeline.wrap(directory, engine, **pipeline_kwargs)
        return cls._assemble(
            pipeline, engine, policy, queue_bound, registration_rate,
            registration_burst, delay_timeout, dedupe, cache_capacity, clock,
            supervision,
        )

    @classmethod
    def resume(
        cls,
        directory: str,
        algorithm: Optional[MonotonicAlgorithm] = None,
        on_corrupt: str = "quarantine",
        num_shards: int = 2,
        rule: KeyPathRule = KeyPathRule.PRECISE,
        queue_bound: int = 64,
        policy: ShedPolicy = ShedPolicy.REJECT,
        registration_rate: float = 64.0,
        registration_burst: float = 32.0,
        delay_timeout: float = 2.0,
        dedupe: bool = False,
        cache_capacity: int = 128,
        clock: Callable[[], float] = time.monotonic,
        fault_hook=None,
        epoch_deadline: float = 30.0,
        supervision: Optional[SupervisorConfig] = None,
        provenance: Optional[ProvenanceRecorder] = None,
        backend: str = "thread",
        **pipeline_kwargs,
    ) -> "ServeHarness":
        """Recover a crashed serving session from its state directory.

        Checkpoint restore + WAL tail replay rebuild the canonical
        topology and the anchor's converged state; shard workers start
        from the recovered graph, so clients simply re-register their
        standing queries (sessions are in-memory, not durable state).
        """
        counters = pipeline_kwargs.pop("counters", None) or ResilienceCounters()
        manager = RecoveryManager(
            directory, algorithm=algorithm, on_corrupt=on_corrupt,
            counters=counters,
        )
        recovered = manager.recover()
        base = recovered.engine
        engine = ShardedServeEngine(
            base.graph,
            base.algorithm,
            base.query,
            num_shards=num_shards,
            rule=rule,
            queue_bound=queue_bound,
            fault_hook=fault_hook,
            epoch_deadline=epoch_deadline,
            clock=clock,
            provenance=provenance if provenance is not None
            else ProvenanceRecorder(),
            backend=backend,
        )
        engine.adopt_state(base.state.states, base.state.parents)
        pipeline = ResilientPipeline.wrap(
            directory,
            engine,
            start_snapshot=recovered.snapshot_id,
            checkpoint_now=False,
            counters=counters,
            **pipeline_kwargs,
        )
        return cls._assemble(
            pipeline, engine, policy, queue_bound, registration_rate,
            registration_burst, delay_timeout, dedupe, cache_capacity, clock,
            supervision, recovered=recovered,
        )

    @classmethod
    def _assemble(
        cls, pipeline, engine, policy, queue_bound, registration_rate,
        registration_burst, delay_timeout, dedupe, cache_capacity, clock,
        supervision=None, recovered=None,
    ) -> "ServeHarness":
        """Shared tail of :meth:`open` / :meth:`resume`."""
        admission = AdmissionController(
            policy=policy,
            queue_bound=queue_bound,
            registration_rate=registration_rate,
            registration_burst=registration_burst,
            delay_timeout=delay_timeout,
            clock=clock,
        )
        registry = SessionRegistry(dedupe=dedupe)
        cache = ResultCache(engine.graph, engine.algorithm,
                            capacity=cache_capacity)
        # the supervisor flips the engine into tolerant mode: shard loss
        # degrades and resurrects instead of raising out of submit()
        supervisor = Supervisor(engine, registry, config=supervision,
                                clock=clock)
        return cls(pipeline, engine, admission, registry, cache, supervisor,
                   recovered=recovered, clock=clock)

    # ------------------------------------------------------------------
    # standing queries
    # ------------------------------------------------------------------
    def register(
        self,
        source: int,
        destination: int,
        callback: Optional[Callable[[QuerySession, AnswerEvent], None]] = None,
    ) -> QuerySession:
        """Register a standing query; returns its session.

        Admission runs first (token bucket, then the owning shard's inbox
        depth), so a shed registration creates no session.  Raises
        :class:`~repro.errors.RateLimitedError`,
        :class:`~repro.errors.QueueSaturatedError` or
        :class:`~repro.errors.DuplicateQueryError` (unless deduping).
        """
        request = PairwiseQuery(source, destination)
        request.validate(self.engine.graph.num_vertices)
        shard = self.engine.shard_of(request.source)
        try:
            self.admission.admit_registration(shard.depth)
        finally:
            self._record_telemetry()
        session = self.sessions.register(request, callback)
        if session.registered_snapshot is not None:
            return session  # dedupe hit: already queued or live
        session.registered_snapshot = self.pipeline.snapshot_id
        try:
            shard.submit_register(session, block=False)
        except queue.Full:
            # lost the depth race; undo the session and shed like admission
            self.sessions.close(session.id)
            self.admission._count_rejection(QueueSaturatedError.reason)
            self._record_telemetry()
            raise QueueSaturatedError(
                f"shard {shard.index} inbox filled during registration"
            ) from None
        self._record_telemetry()
        return session

    def deregister(self, session_id: str) -> QuerySession:
        """Close a session and detach its destination from the shard."""
        session = self.sessions.close(session_id)
        shard = self.engine.shard_of(session.query.source)
        shard.submit_deregister(session.query.source,
                                session.query.destination)
        self._record_telemetry()
        return session

    def wait_all_live(self, timeout: float = 10.0) -> bool:
        """Block until every active session left warm-up; True iff all LIVE."""
        deadline = time.monotonic() + timeout
        all_live = True
        for session in self.sessions.active_sessions():
            remaining = max(0.0, deadline - time.monotonic())
            all_live &= session.wait_live(remaining)
        return all_live

    # ------------------------------------------------------------------
    # streaming
    # ------------------------------------------------------------------
    @property
    def snapshot_id(self) -> int:
        return self.pipeline.snapshot_id

    def submit(
        self, batch: Union[UpdateBatch, List[EdgeUpdate]]
    ) -> ServeBatchResult:
        """Commit one update batch and fan answers to live sessions.

        Admission (queue-depth probe under the shed policy) runs *before*
        the WAL append: a shed batch leaves no durable trace, an admitted
        batch is never dropped.  Raises
        :class:`~repro.errors.QueueSaturatedError` when shed.
        """
        if not isinstance(batch, UpdateBatch):
            batch = UpdateBatch(list(batch))
        upper = batch.max_vertex()
        if upper >= self.engine.graph.num_vertices:
            raise QueryError(
                f"batch references vertex {upper} outside the "
                f"{self.engine.graph.num_vertices}-vertex graph"
            )
        try:
            self.admission.admit_batch(self.engine.max_depth)
        finally:
            self._record_telemetry()
        started = time.perf_counter()
        result: ServeBatchResult = self.pipeline.run_batch(batch)
        latency = time.perf_counter() - started
        self.batches_served += 1
        self._latencies.append(latency)
        telemetry = self.telemetry
        # re-enter the batch's causal tree: answer delivery, cache
        # invalidation and supervision all descend from the commit root
        scope = (
            telemetry.activate(self.pipeline.last_trace)
            if telemetry is not None else contextlib.nullcontext()
        )
        with scope:
            self._fan_out(result, latency)
            if self.engine.last_effective is not None:
                if telemetry is None:
                    self.cache.on_batch(self.engine.last_effective)
                else:
                    with telemetry.span(
                        "serve.cache_invalidate", epoch=result.epoch
                    ) as span:
                        tallies = self.cache.on_batch(
                            self.engine.last_effective
                        )
                        span.set(**tallies)
            # stamp this epoch's exact answers into the last-known store
            # (after on_batch so the age of a current answer reads as 0)
            for (source, destination), value in result.answers.items():
                self.cache.remember(source, destination, value)
            self.supervisor.review(result)
            if self.controller is not None:
                # still inside the batch's trace scope, so every decision
                # point joins the epoch's causal tree
                self.controller.review(result)
        self._record_telemetry()
        return result

    def _fan_out(self, result: ServeBatchResult, latency: float) -> None:
        """Deliver per-query answers and degrade failed sources' sessions."""
        degraded = dict(result.degraded)
        failed = {index for index, _ in result.failed_shards}
        reasons = dict(result.failed_shards)
        telemetry = self.telemetry
        context = self.pipeline.last_trace
        trace_id = context.trace_id if context is not None else None
        for session in self.sessions.active_sessions():
            source = session.query.source
            shard_index = source % self.engine.num_shards
            if source in degraded or shard_index in failed:
                reason = degraded.get(source) or reasons[shard_index]
                if session.state is not SessionState.DEGRADED:
                    session.transition(SessionState.DEGRADED, reason=reason)
                continue
            key = (source, session.query.destination)
            if key not in result.answers:
                continue  # registered after this batch entered the shard
            session.push_answer(AnswerEvent(
                snapshot_id=self.pipeline.snapshot_id,
                answer=result.answers[key],
                latency_seconds=latency,
                trace_id=trace_id,
                epoch=result.epoch,
            ))
            if telemetry is not None:
                record_answer_latency(
                    telemetry.registry, session.id, latency,
                    worker=f"shard-{shard_index}",
                )
                telemetry.point(
                    "serve.answer",
                    session=session.id,
                    source=source,
                    destination=session.query.destination,
                    value=result.answers[key],
                    epoch=result.epoch,
                    snapshot=self.pipeline.snapshot_id,
                )

    # ------------------------------------------------------------------
    # ad-hoc reads
    # ------------------------------------------------------------------
    def query(self, source: int, destination: int) -> float:
        """One-shot pairwise read against the current snapshot (cached).

        Compatibility front for :meth:`read` — returns the bare value.
        """
        return self.read(source, destination).value

    def read(
        self,
        source: Optional[int] = None,
        destination: Optional[int] = None,
        session_id: Optional[str] = None,
    ) -> ReadResult:
        """One-shot pairwise read with an explicit freshness contract.

        Address the pair directly (``source``/``destination``) or through
        a standing session (``session_id``) — the latter raises
        :class:`~repro.errors.SessionClosedError` when the session is
        unknown or already closed, instead of leaking a ``KeyError``.

        On a closed circuit this is the cached exact read.  While
        ``source``'s breaker is open (or trialling half-open), the answer
        comes from the last-known store when one exists within the
        supervisor's ``max_staleness`` bound — tagged ``degraded`` with
        its age — and otherwise falls back to a direct recompute that
        still carries the flag (the value is exact; the serving path for
        this source is not healthy).
        """
        source, destination = self._resolve_pair(
            source, destination, session_id
        )
        request = PairwiseQuery(source, destination)
        request.validate(self.engine.graph.num_vertices)
        degraded = self.supervisor.breaker_open(source)
        stale_epochs = 0
        if degraded:
            self.supervisor.degraded_reads += 1
            stamped = self.cache.stale_lookup(source, destination)
            if (
                stamped is not None
                and stamped[1] <= self.supervisor.config.max_staleness
            ):
                value, stale_epochs = stamped
                self.stale_reads_served += 1
                self._staleness_high = max(self._staleness_high, stale_epochs)
                self._record_telemetry()
                return ReadResult(value, degraded=True,
                                  stale_epochs=stale_epochs)
        value = self.cache.fetch(source, destination, ops=self.query_ops)
        if self.telemetry is not None:
            record_serve_cache(self.telemetry.registry,
                               self.cache.stats.as_dict())
        return ReadResult(value, degraded=degraded, stale_epochs=stale_epochs)

    def _resolve_pair(
        self,
        source: Optional[int],
        destination: Optional[int],
        session_id: Optional[str],
    ) -> "tuple[int, int]":
        """Resolve a read/explain target to its ``(source, destination)``."""
        if session_id is None:
            if source is None or destination is None:
                raise QueryError(
                    "read/explain needs source and destination "
                    "(or a session_id)"
                )
            return source, destination
        try:
            session = self.sessions.get(session_id)
        except SessionNotFoundError:
            raise SessionClosedError(session_id, "is unknown") from None
        if session.state is SessionState.CLOSED:
            raise SessionClosedError(session_id, "is closed")
        return session.query.source, session.query.destination

    # ------------------------------------------------------------------
    # provenance
    # ------------------------------------------------------------------
    def explain(
        self,
        source: Optional[int] = None,
        destination: Optional[int] = None,
        epoch: Optional[int] = None,
        session_id: Optional[str] = None,
    ) -> Dict[str, object]:
        """Explain ``Q(source -> destination)`` at ``epoch`` (default: the
        latest epoch that answered the pair).

        The pair can also be addressed through a standing session
        (``session_id``), which raises
        :class:`~repro.errors.SessionClosedError` when the session is
        unknown or closed.  Returns the provenance record: classification
        counts, sampled triangle-inequality verdicts, and the key-path
        evolution for the destination.  Raises
        :class:`~repro.errors.ProvenanceMissError` when recording is
        disabled or the epoch has been evicted from the bounded store.
        """
        source, destination = self._resolve_pair(
            source, destination, session_id
        )
        if self.provenance is None:
            raise ProvenanceMissError("provenance recording is disabled")
        return self.provenance.explain(source, destination, epoch=epoch)

    # ------------------------------------------------------------------
    # adaptive control
    # ------------------------------------------------------------------
    def attach_controller(self, config=None):
        """Attach (or return) the adaptive :class:`RuntimeController`.

        ``config`` is a :class:`~repro.serve.control.ControllerConfig`
        (default-constructed when omitted).  Idempotent: a second call
        returns the existing controller unchanged.  From then on every
        :meth:`submit` ends with a controller review — see
        docs/adaptive_control.md.
        """
        from repro.serve.control import ControllerConfig, RuntimeController

        if self.controller is None:
            self.controller = RuntimeController(
                self, config or ControllerConfig()
            )
        return self.controller

    def rescale_shards(self, num_shards: int) -> None:
        """Repartition the worker pool live, migrating every session.

        Rescales the engine to ``num_shards`` fresh workers built from
        the canonical graph, then requeues every active session on its
        new owning shard (``source % num_shards``): the session drops to
        PENDING and re-enters the normal warm-up, answering again from
        the next committed batch.  Degraded sessions stay with the
        supervisor's rescue path, which routes through the new pool.
        Must be called between batches (the harness's quiet point) —
        the controller does so from its post-commit review.
        """
        if num_shards == self.engine.num_shards:
            return
        self.engine.rescale(num_shards)
        for session in self.sessions.active_sessions():
            if session.state is not SessionState.PENDING:
                session.transition(SessionState.PENDING)
            shard = self.engine.shard_of(session.query.source)
            shard.submit_register(session, block=True)
        self._record_telemetry()

    def answer_p99(self) -> float:
        """Nearest-rank p99 over the recent per-batch answer latencies."""
        if not self._latencies:
            return 0.0
        ordered = sorted(self._latencies)
        return ordered[min(len(ordered) - 1,
                           int(0.99 * (len(ordered) - 1)))]

    def staleness_high_water(self) -> int:
        """Max staleness age served since the last controller review."""
        return self._staleness_high

    def reset_staleness_high_water(self) -> None:
        """Start a fresh staleness observation window (controller use)."""
        self._staleness_high = 0

    # ------------------------------------------------------------------
    # introspection / shutdown
    # ------------------------------------------------------------------
    def stats(self) -> Dict[str, object]:
        """Point-in-time summary across every serving subsystem."""
        data: Dict[str, object] = {
            "snapshot_id": self.pipeline.snapshot_id,
            "backend": self.engine.backend,
            "epoch": self.engine.epoch,
            "batches_served": self.batches_served,
            "sessions": self.sessions.by_state(),
            "admission": self.admission.stats(),
            "cache": self.cache.stats.as_dict(),
            "supervisor": self.supervisor.stats(),
            "shards": {
                shard.index: {
                    "depth": shard.depth,
                    "alive": shard.alive,
                    "sources": sorted(shard.groups),
                }
                for shard in self.engine.shards
            },
        }
        if self.controller is not None:
            data["controller"] = self.controller.stats()
        return data

    def _record_telemetry(self) -> None:
        telemetry = self.telemetry
        if telemetry is None:
            return
        record_serve_state(
            telemetry.registry,
            {shard.index: shard.depth for shard in self.engine.shards},
            self.sessions.by_state(),
            workers={
                shard.index: f"shard-{shard.index}"
                for shard in self.engine.shards
            },
        )
        record_serve_admission(telemetry.registry, self.admission.stats())
        record_serve_cache(telemetry.registry, self.cache.stats.as_dict())
        record_supervision(telemetry.registry, self.supervisor.stats())
        if self.controller is not None:
            record_controller(telemetry.registry, self.controller.stats())

    def close(self, final_checkpoint: bool = True) -> None:
        """Close every session, checkpoint, release the WAL, stop shards.

        Shard shutdown is strict: a worker thread that survives its join
        deadline raises :class:`~repro.errors.ShardShutdownError` — leaks
        are errors, not silent daemon-thread residue.
        """
        for session in self.sessions.active_sessions():
            self.sessions.close(session.id)
        self._record_telemetry()
        self.pipeline.close(final_checkpoint=final_checkpoint)
        self.engine.close()

    def __enter__(self) -> "ServeHarness":
        return self

    def __exit__(self, exc_type, *exc) -> None:
        # mirror the pipeline: on an injected crash leave disk state as the
        # crash left it (recovery's job), but always stop the worker threads;
        # non-strict so a shutdown straggler cannot mask the real exception
        if exc_type is None:
            self.close()
        else:
            self.pipeline.wal.close()
            self.engine.close(strict=False)

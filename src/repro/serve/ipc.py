"""Command/outcome codec for process-backed shard workers.

The process backend (:mod:`repro.serve.executor`) moves every byte
between the engine and a shard child over two ``multiprocessing`` queues.
Queues pickle whatever they are given, so nothing *forces* a wire format
— but an implicit format is exactly how rich parent-side objects
(sessions with locks, fault hooks with thread gates, telemetry handles)
leak into the channel and die at pickling time, or worse, drag
un-forkable state into the child.  This module makes the wire format
explicit and primitive:

* **commands** (parent → child) are tuples of str/int/float only —
  ``register`` carries the session *id*, never the session object;
  ``batch`` carries the effective updates as ``(kind, u, v, w)`` rows;
* **outcomes** (child → parent) are tuples/dicts of the same primitives
  — heartbeats, session lifecycle events, encoded epoch outcomes, acks,
  telemetry frames and a ``fatal`` last-gasp record.

Two observability payloads cross the channel in primitive form as well:
the ingest :class:`~repro.obs.tracing.TraceContext` rides every batch
command as a ``(trace_id, parent_span_id)`` pair
(:func:`encode_context`/:func:`decode_context`), and the child's
telemetry agent ships batched span events plus metric deltas back as
``OUT_TELEMETRY`` frames (:func:`encode_telemetry_frame`/
:func:`decode_telemetry_frame`) — see ``docs/tracing.md`` for how the
parent merges them.

Every encode has a matching decode, and both ends round-trip through
this codec, so a schema change breaks loudly in one file (and in
``tests/test_serve_process.py``'s codec suite) instead of silently
desynchronising parent and child.
"""

from __future__ import annotations

import dataclasses
from typing import Dict, List, Optional, Sequence, Tuple

from repro.graph.batch import EdgeUpdate, UpdateBatch, UpdateKind
from repro.metrics import OpCounts
from repro.obs.tracing import TraceContext

__all__ = [
    "CMD_BATCH",
    "CMD_DIE",
    "CMD_DEREGISTER",
    "CMD_REGISTER",
    "CMD_STOP",
    "CMD_WEDGE",
    "OUT_ACK",
    "OUT_FATAL",
    "OUT_HEARTBEAT",
    "OUT_OUTCOME",
    "OUT_SESSION",
    "OUT_TELEMETRY",
    "decode_batch",
    "decode_context",
    "decode_outcome",
    "decode_telemetry_frame",
    "encode_batch",
    "encode_context",
    "encode_outcome",
    "encode_telemetry_frame",
]

# command tags (parent -> child)
CMD_REGISTER = "register"
CMD_DEREGISTER = "deregister"
CMD_BATCH = "batch"
CMD_WEDGE = "wedge"  # spin without heartbeating (chaos wedge fault)
CMD_DIE = "die"      # exit with a nonzero code (chaos crash fault)
CMD_STOP = "stop"

# outcome tags (child -> parent)
OUT_HEARTBEAT = "hb"
OUT_SESSION = "session"
OUT_OUTCOME = "outcome"
OUT_ACK = "ack"
OUT_FATAL = "fatal"
OUT_TELEMETRY = "telemetry"


# ----------------------------------------------------------------------
# trace contexts
# ----------------------------------------------------------------------
def encode_context(
    context: Optional[TraceContext],
) -> Optional[Tuple[str, Optional[int]]]:
    """The ingest trace context as a wire pair (None stays None)."""
    if context is None:
        return None
    return (context.trace_id, context.parent_span_id)


def decode_context(
    wire: Optional[Tuple[str, Optional[int]]],
) -> Optional[TraceContext]:
    """Rebuild the :class:`TraceContext` a batch command carried."""
    if wire is None:
        return None
    trace_id, parent_span_id = wire
    return TraceContext(
        trace_id=str(trace_id),
        parent_span_id=None if parent_span_id is None else int(parent_span_id),
    )


# ----------------------------------------------------------------------
# telemetry frames
# ----------------------------------------------------------------------
def encode_telemetry_frame(
    worker: int,
    pid: int,
    skew: float,
    events: Sequence[Dict[str, object]],
    counters: Sequence[Tuple[str, Sequence[Tuple[str, str]], float]],
    gauges: Sequence[Tuple[str, Sequence[Tuple[str, str]], float]],
    dropped: int,
) -> Dict[str, object]:
    """One child-telemetry frame as a primitive dict.

    ``events`` are :meth:`~repro.obs.events.Event.as_dict` payloads;
    ``counters`` carry *deltas* since the previous frame and ``gauges``
    carry current levels, each as ``(name, label_pairs, value)`` rows.
    ``skew`` is the child's ``time.time() - time.perf_counter()`` so the
    parent can shift event timestamps into its own clock domain;
    ``dropped`` is the cumulative count of events the bounded frame
    buffer shed (telemetry backpressure must never stall batch work).
    """
    return {
        "worker": int(worker),
        "pid": int(pid),
        "skew": float(skew),
        "events": [dict(event) for event in events],
        "counters": [
            [str(name), [[str(k), str(v)] for k, v in labels], float(value)]
            for name, labels, value in counters
        ],
        "gauges": [
            [str(name), [[str(k), str(v)] for k, v in labels], float(value)]
            for name, labels, value in gauges
        ],
        "dropped": int(dropped),
    }


def decode_telemetry_frame(data: Dict[str, object]) -> Dict[str, object]:
    """Normalise a telemetry frame on the parent side (types re-asserted)."""
    return {
        "worker": int(data["worker"]),
        "pid": int(data["pid"]),
        "skew": float(data["skew"]),
        "events": [dict(event) for event in data["events"]],
        "counters": [
            (str(name), [(str(k), str(v)) for k, v in labels], float(value))
            for name, labels, value in data["counters"]
        ],
        "gauges": [
            (str(name), [(str(k), str(v)) for k, v in labels], float(value))
            for name, labels, value in data["gauges"]
        ],
        "dropped": int(data["dropped"]),
    }


# ----------------------------------------------------------------------
# batches
# ----------------------------------------------------------------------
def encode_batch(batch: UpdateBatch) -> List[Tuple[str, int, int, float]]:
    """Flatten a batch to ``(kind, u, v, w)`` rows (the per-epoch delta)."""
    return [
        (update.kind.value, update.u, update.v, float(update.weight))
        for update in batch
    ]


def decode_batch(rows: List[Tuple[str, int, int, float]]) -> UpdateBatch:
    """Rebuild the effective batch on the child side."""
    return UpdateBatch([
        EdgeUpdate(UpdateKind(kind), u, v, w) for kind, u, v, w in rows
    ])


# ----------------------------------------------------------------------
# epoch outcomes
# ----------------------------------------------------------------------
def encode_outcome(outcome) -> Dict[str, object]:
    """Flatten a :class:`~repro.serve.shard.ShardBatchOutcome` to a dict.

    Answer keys become ``[source, destination, value]`` rows because
    tuple dict keys do not survive a JSON detour (flight bundles embed
    these dicts verbatim).
    """
    return {
        "epoch": outcome.epoch,
        "shard": outcome.shard,
        "answers": [
            [source, destination, value]
            for (source, destination), value in outcome.answers.items()
        ],
        "response_ops": dataclasses.asdict(outcome.response_ops),
        "post_ops": dataclasses.asdict(outcome.post_ops),
        "stats": dict(outcome.stats),
        "degraded": [[source, reason] for source, reason in outcome.degraded],
    }


def decode_outcome(data: Dict[str, object]):
    """Rebuild the outcome on the parent side."""
    from repro.serve.shard import ShardBatchOutcome

    return ShardBatchOutcome(
        epoch=int(data["epoch"]),
        shard=int(data["shard"]),
        answers={
            (int(source), int(destination)): float(value)
            for source, destination, value in data["answers"]
        },
        response_ops=OpCounts(**data["response_ops"]),
        post_ops=OpCounts(**data["post_ops"]),
        stats={str(k): int(v) for k, v in data["stats"].items()},
        degraded=[(int(source), str(reason))
                  for source, reason in data["degraded"]],
    )

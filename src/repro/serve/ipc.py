"""Command/outcome codec for process-backed shard workers.

The process backend (:mod:`repro.serve.executor`) moves every byte
between the engine and a shard child over two ``multiprocessing`` queues.
Queues pickle whatever they are given, so nothing *forces* a wire format
— but an implicit format is exactly how rich parent-side objects
(sessions with locks, fault hooks with thread gates, telemetry handles)
leak into the channel and die at pickling time, or worse, drag
un-forkable state into the child.  This module makes the wire format
explicit and primitive:

* **commands** (parent → child) are tuples of str/int/float only —
  ``register`` carries the session *id*, never the session object;
  ``batch`` carries the effective updates as ``(kind, u, v, w)`` rows;
* **outcomes** (child → parent) are tuples/dicts of the same primitives
  — heartbeats, session lifecycle events, encoded epoch outcomes, acks,
  and a ``fatal`` last-gasp record.

Every encode has a matching decode, and both ends round-trip through
this codec, so a schema change breaks loudly in one file (and in
``tests/test_serve_process.py``'s codec suite) instead of silently
desynchronising parent and child.
"""

from __future__ import annotations

import dataclasses
from typing import Dict, List, Tuple

from repro.graph.batch import EdgeUpdate, UpdateBatch, UpdateKind
from repro.metrics import OpCounts

__all__ = [
    "CMD_BATCH",
    "CMD_DIE",
    "CMD_DEREGISTER",
    "CMD_REGISTER",
    "CMD_STOP",
    "CMD_WEDGE",
    "OUT_ACK",
    "OUT_FATAL",
    "OUT_HEARTBEAT",
    "OUT_OUTCOME",
    "OUT_SESSION",
    "decode_batch",
    "decode_outcome",
    "encode_batch",
    "encode_outcome",
]

# command tags (parent -> child)
CMD_REGISTER = "register"
CMD_DEREGISTER = "deregister"
CMD_BATCH = "batch"
CMD_WEDGE = "wedge"  # spin without heartbeating (chaos wedge fault)
CMD_DIE = "die"      # exit with a nonzero code (chaos crash fault)
CMD_STOP = "stop"

# outcome tags (child -> parent)
OUT_HEARTBEAT = "hb"
OUT_SESSION = "session"
OUT_OUTCOME = "outcome"
OUT_ACK = "ack"
OUT_FATAL = "fatal"


# ----------------------------------------------------------------------
# batches
# ----------------------------------------------------------------------
def encode_batch(batch: UpdateBatch) -> List[Tuple[str, int, int, float]]:
    """Flatten a batch to ``(kind, u, v, w)`` rows (the per-epoch delta)."""
    return [
        (update.kind.value, update.u, update.v, float(update.weight))
        for update in batch
    ]


def decode_batch(rows: List[Tuple[str, int, int, float]]) -> UpdateBatch:
    """Rebuild the effective batch on the child side."""
    return UpdateBatch([
        EdgeUpdate(UpdateKind(kind), u, v, w) for kind, u, v, w in rows
    ])


# ----------------------------------------------------------------------
# epoch outcomes
# ----------------------------------------------------------------------
def encode_outcome(outcome) -> Dict[str, object]:
    """Flatten a :class:`~repro.serve.shard.ShardBatchOutcome` to a dict.

    Answer keys become ``[source, destination, value]`` rows because
    tuple dict keys do not survive a JSON detour (flight bundles embed
    these dicts verbatim).
    """
    return {
        "epoch": outcome.epoch,
        "shard": outcome.shard,
        "answers": [
            [source, destination, value]
            for (source, destination), value in outcome.answers.items()
        ],
        "response_ops": dataclasses.asdict(outcome.response_ops),
        "post_ops": dataclasses.asdict(outcome.post_ops),
        "stats": dict(outcome.stats),
        "degraded": [[source, reason] for source, reason in outcome.degraded],
    }


def decode_outcome(data: Dict[str, object]):
    """Rebuild the outcome on the parent side."""
    from repro.serve.shard import ShardBatchOutcome

    return ShardBatchOutcome(
        epoch=int(data["epoch"]),
        shard=int(data["shard"]),
        answers={
            (int(source), int(destination)): float(value)
            for source, destination, value in data["answers"]
        },
        response_ops=OpCounts(**data["response_ops"]),
        post_ops=OpCounts(**data["post_ops"]),
        stats={str(k): int(v) for k, v in data["stats"].items()},
        degraded=[(int(source), str(reason))
                  for source, reason in data["degraded"]],
    )

"""Concurrent query serving over streaming pairwise analytics.

The paper's engine answers one fixed query; a deployment serves *many
clients* registering and dropping standing queries while the topology
keeps streaming.  This package is that serving layer:

* :mod:`repro.serve.session` — standing-query sessions with a
  pending/warming/live/degraded/closed lifecycle and a registry enforcing
  one session per query;
* :mod:`repro.serve.shard` — worker threads partitioning sessions by
  source group, each owning a private topology copy and bounded inbox;
* :mod:`repro.serve.executor` — the pluggable backend layer:
  :class:`ProcessShardWorker` runs the same worker surface as a real OS
  process over a shared-memory CSR snapshot, with exit-code failure
  taxonomy (crashed/hung/killed);
* :mod:`repro.serve.ipc` — the primitive-only command/outcome codec the
  process backend speaks;
* :mod:`repro.serve.engine` — the sharded engine speaking the common
  engine protocol so the resilience stack (WAL, checkpoints, guard,
  recovery) wraps it unchanged;
* :mod:`repro.serve.admission` — token-bucket registration limits and
  reject-vs-delay load shedding with typed errors;
* :mod:`repro.serve.cache` — key-path-aware memoization of one-shot
  pairwise reads, invalidated with the paper's own contribution tests;
* :mod:`repro.serve.health` — heartbeats, the shard health monitor, and
  the per-source circuit breaker;
* :mod:`repro.serve.supervision` — the :class:`Supervisor` that detects
  crashed/hung shards, resurrects them, and paces rescues through the
  breakers;
* :mod:`repro.serve.harness` — :class:`ServeHarness`, the façade wiring
  all of the above plus telemetry;
* :mod:`repro.serve.control` — the adaptive :class:`RuntimeController`
  that self-tunes shards, admission, cache and staleness against an
  :class:`SLOPolicy` after every committed epoch;
* :mod:`repro.serve.protocol` — the line-oriented script protocol behind
  ``repro serve``.

See ``docs/serving.md`` for the architecture and the backpressure and
cache-invalidation policies, ``docs/self_healing.md`` for the
supervision tree, breaker semantics and the degraded-read staleness
contract, and ``docs/adaptive_control.md`` for the feedback controller's
decision table, audit log and kill switch.
"""

from repro.serve.admission import AdmissionController, ShedPolicy, TokenBucket
from repro.serve.cache import CacheStats, ResultCache
from repro.serve.control import (
    Condition,
    ControlDecision,
    ControlLimits,
    ControlSignals,
    ControllerConfig,
    DecisionEngine,
    RuntimeController,
    SLOPolicy,
    SLOVerdict,
)
from repro.serve.engine import ServeBatchResult, ShardedServeEngine
from repro.serve.executor import BACKENDS, ProcessShardWorker, resolve_backend
from repro.serve.harness import ReadResult, ServeHarness
from repro.serve.health import (
    BreakerState,
    CircuitBreaker,
    HealthMonitor,
    Heartbeat,
    ShardHealth,
)
from repro.serve.protocol import ScriptRunner, format_event, parse_script
from repro.serve.session import (
    AnswerEvent,
    QuerySession,
    SessionRegistry,
    SessionState,
)
from repro.serve.shard import ShardBatchOutcome, ShardWorker
from repro.serve.supervision import Supervisor, SupervisorConfig

__all__ = [
    "AdmissionController",
    "BACKENDS",
    "ProcessShardWorker",
    "resolve_backend",
    "AnswerEvent",
    "BreakerState",
    "CacheStats",
    "CircuitBreaker",
    "Condition",
    "ControlDecision",
    "ControlLimits",
    "ControlSignals",
    "ControllerConfig",
    "DecisionEngine",
    "HealthMonitor",
    "Heartbeat",
    "QuerySession",
    "RuntimeController",
    "SLOPolicy",
    "SLOVerdict",
    "ReadResult",
    "ResultCache",
    "ScriptRunner",
    "ServeBatchResult",
    "ServeHarness",
    "SessionRegistry",
    "SessionState",
    "ShardBatchOutcome",
    "ShardHealth",
    "ShardWorker",
    "ShardedServeEngine",
    "ShedPolicy",
    "Supervisor",
    "SupervisorConfig",
    "TokenBucket",
    "format_event",
    "parse_script",
]

"""Key-path-aware result cache for ad-hoc pairwise reads.

Standing sessions get their answers for free from the shard workers'
converged source groups; the cache serves the other read pattern — clients
issuing (often duplicate) one-shot ``query(s, d)`` reads against the
current snapshot — without a full computation per read.

A cache entry is keyed ``(source, destination)`` and lives inside a
per-source *family* holding the solver's converged state/parent arrays
("fresh") plus the answer's key path (the witness chain from
:class:`~repro.core.keypath.KeyPathTracker`).  On every committed batch
the cache invalidates with the paper's own machinery instead of flushing:

* an addition that is *useless* wrt the family's converged states
  (``improves`` false, Algorithm 1) provably changes no state — retained;
* a *valuable* addition may improve anything — the family is dropped;
* a deletion that *supplies* no state (``supplies`` false) is a no-op —
  retained;
* a supplying deletion invalidates exactly the entries whose **key path**
  contains the deleted edge; other entries keep their answers (the witness
  path is intact and deletions cannot improve a monotone answer) but the
  family's state array goes *stale*, so later additions can no longer be
  classified and conservatively drop the family;
* a batch mixing supplying deletions with additions drops the family:
  a repair may make a previously-useless addition valuable, so retention
  cannot be proven.

Every retention above is a theorem, not a heuristic — the differential
fuzz test in ``tests/test_serve_cache.py`` checks cache hits against a
fresh solver run on every step.
"""

from __future__ import annotations

from collections import OrderedDict
from dataclasses import dataclass, field
from typing import Dict, FrozenSet, List, Optional, Tuple

from repro.algorithms.base import MonotonicAlgorithm
from repro.algorithms.solvers import dijkstra
from repro.core.keypath import KeyPathTracker
from repro.errors import ControlError
from repro.graph.batch import UpdateBatch
from repro.graph.dynamic import DynamicGraph
from repro.metrics import OpCounts


@dataclass
class CacheStats:
    """Cumulative cache effectiveness counters."""

    lookups: int = 0
    hits: int = 0
    misses: int = 0
    invalidated_entries: int = 0
    invalidated_families: int = 0
    evicted_families: int = 0

    @property
    def hit_rate(self) -> float:
        """Fraction of lookups served without a full computation."""
        return self.hits / self.lookups if self.lookups else 0.0

    def as_dict(self) -> Dict[str, float]:
        data = {
            "lookups": self.lookups,
            "hits": self.hits,
            "misses": self.misses,
            "invalidated_entries": self.invalidated_entries,
            "invalidated_families": self.invalidated_families,
            "evicted_families": self.evicted_families,
            "hit_rate": self.hit_rate,
        }
        return data


@dataclass
class _Entry:
    """One cached ``(source, destination)`` answer with its witness path."""

    value: float
    #: dependence edges ``(parent, child)`` of the key path (empty when the
    #: destination is unreached — then no deletion can worsen it further)
    path_edges: FrozenSet[Tuple[int, int]]


@dataclass
class _SourceFamily:
    """All cached answers of one source plus the solver state behind them."""

    states: List[float]
    parents: List[int]
    #: True while ``states`` is the converged array of the *current*
    #: snapshot (required for classifying additions); supplying deletions
    #: flip it off without discarding still-valid answers
    fresh: bool = True
    answers: Dict[int, _Entry] = field(default_factory=dict)


class ResultCache:
    """Memoized pairwise answers with contribution-driven invalidation.

    ``capacity`` bounds the number of source families (LRU eviction).
    The cache is driven from the harness thread only — reads between
    batches, :meth:`on_batch` after each commit — so it needs no locking.
    """

    def __init__(
        self,
        graph: DynamicGraph,
        algorithm: MonotonicAlgorithm,
        capacity: int = 128,
    ) -> None:
        if capacity <= 0:
            raise ValueError("capacity must be positive")
        self.graph = graph
        self.algorithm = algorithm
        self.capacity = capacity
        self.stats = CacheStats()
        self._families: "OrderedDict[int, _SourceFamily]" = OrderedDict()
        #: committed batches seen (the staleness clock for degraded reads)
        self.epoch = 0
        # last-known answers: (source, destination) -> (value, epoch stamped).
        # Unlike families these survive invalidation — they are explicitly
        # *possibly stale* and only served on an open circuit, bounded by
        # the supervisor's max_staleness (see docs/self_healing.md).
        self._last_known: "OrderedDict[Tuple[int, int], Tuple[float, int]]" = (
            OrderedDict()
        )
        self._last_known_bound = max(1024, capacity * 8)

    def __len__(self) -> int:
        return sum(len(f.answers) for f in self._families.values())

    @property
    def num_families(self) -> int:
        return len(self._families)

    # ------------------------------------------------------------------
    # reads
    # ------------------------------------------------------------------
    def fetch(
        self, source: int, destination: int, ops: Optional[OpCounts] = None
    ) -> float:
        """Answer ``Q(source -> destination)`` on the current snapshot.

        Serves from the family's converged states (fresh family, any
        destination) or a retained entry (stale family, cached
        destination); otherwise runs the solver, installing a fresh family.
        """
        self.stats.lookups += 1
        family = self._families.get(source)
        if family is not None:
            self._families.move_to_end(source)
            if family.fresh and destination < len(family.states):
                self.stats.hits += 1
                if destination not in family.answers:
                    family.answers[destination] = self._entry(
                        source, family, destination
                    )
                return family.states[destination]
            entry = family.answers.get(destination)
            if entry is not None:
                self.stats.hits += 1
                return entry.value
        self.stats.misses += 1
        result = dijkstra(self.graph, self.algorithm, source)
        if ops is not None:
            ops += result.ops
        family = _SourceFamily(states=result.states, parents=result.parents)
        family.answers[destination] = self._entry(source, family, destination)
        self._families[source] = family
        self._families.move_to_end(source)
        while len(self._families) > self.capacity:
            self._families.popitem(last=False)
            self.stats.evicted_families += 1
        return family.states[destination]

    # ------------------------------------------------------------------
    # last-known answers (the degraded-read surface)
    # ------------------------------------------------------------------
    def remember(self, source: int, destination: int, value: float) -> None:
        """Record a known-exact answer for the current epoch.

        Fed by the harness fan-out with every per-batch standing answer,
        so an open circuit can still serve ``Q(s -> d)`` with an explicit
        age bound instead of recomputing on a path that just failed.
        """
        key = (source, destination)
        self._last_known[key] = (value, self.epoch)
        self._last_known.move_to_end(key)
        while len(self._last_known) > self._last_known_bound:
            self._last_known.popitem(last=False)

    def stale_lookup(
        self, source: int, destination: int
    ) -> Optional[Tuple[float, int]]:
        """Last-known ``(value, age_in_epochs)`` for a pair, if recorded.

        Age 0 means the answer is from the current epoch (exact); the
        caller enforces its own staleness bound and tags the read
        ``degraded`` — this method never filters.
        """
        stamped = self._last_known.get((source, destination))
        if stamped is None:
            return None
        value, epoch = stamped
        return value, self.epoch - epoch

    def _entry(
        self, source: int, family: _SourceFamily, destination: int
    ) -> _Entry:
        tracker = KeyPathTracker(source, destination)
        tracker.rebuild(family.parents)
        chain = tracker.vertices()  # source ... destination (empty if none)
        return _Entry(
            value=family.states[destination],
            path_edges=frozenset(zip(chain, chain[1:])),
        )

    # ------------------------------------------------------------------
    # invalidation
    # ------------------------------------------------------------------
    def on_batch(self, effective: UpdateBatch) -> Dict[str, int]:
        """Invalidate against one committed *net* batch; returns tallies."""
        self.epoch += 1  # ages every last-known answer by one
        adds = [u for u in effective if u.is_addition]
        dels = [u for u in effective if u.is_deletion]
        tallies = {"families_dropped": 0, "entries_dropped": 0, "retained": 0}
        if not adds and not dels:
            return tallies

        before_entries = self.stats.invalidated_entries
        for source in list(self._families):
            family = self._families[source]
            if family.fresh:
                keep = self._sweep_fresh(family, adds, dels)
            else:
                keep = self._sweep_stale(family, adds, dels)
            if not keep:
                del self._families[source]
                self.stats.invalidated_families += 1
                tallies["families_dropped"] += 1
            else:
                tallies["retained"] += 1
        tallies["entries_dropped"] = (
            self.stats.invalidated_entries - before_entries
        )
        return tallies

    def _sweep_fresh(self, family, adds, dels) -> bool:
        """Classify a net batch against a fresh family; False = drop it."""
        alg = self.algorithm
        states = family.states
        n = len(states)
        for upd in adds:
            if upd.u >= n or upd.v >= n:
                return False  # grown graph: states unknown, cannot classify
            if alg.improves(states[upd.u], upd.weight, states[upd.v]):
                return False  # valuable addition may improve anything
        supplying = []
        for upd in dels:
            if upd.u >= n or upd.v >= n:
                supplying.append(upd)  # conservative: treat as supplying
            elif alg.supplies(states[upd.u], upd.weight, states[upd.v]):
                supplying.append(upd)
        if not supplying:
            return True  # pure no-op batch: family stays fresh
        if adds:
            # a repair may turn a useless addition valuable; retention of
            # anything in this family can no longer be proven
            return False
        deleted = {(upd.u, upd.v) for upd in supplying}
        for destination in list(family.answers):
            if family.answers[destination].path_edges & deleted:
                del family.answers[destination]
                self.stats.invalidated_entries += 1
        family.fresh = False  # states may have shifted off the kept paths
        return bool(family.answers)

    def _sweep_stale(self, family, adds, dels) -> bool:
        """Key-path-only sweep for a stale family; False = drop it."""
        if adds:
            return False  # no states to classify additions against
        deleted = {(upd.u, upd.v) for upd in dels}
        for destination in list(family.answers):
            if family.answers[destination].path_edges & deleted:
                del family.answers[destination]
                self.stats.invalidated_entries += 1
        return bool(family.answers)

    # ------------------------------------------------------------------
    def set_capacity(self, capacity: int) -> None:
        """Resize the family bound live (the controller's cache knob).

        Non-positive capacities are rejected.  On shrink, least-recently
        used families are evicted immediately so the bound holds before
        the next lookup.  The last-known store keeps its original bound —
        degraded reads must not lose history because the hot cache shrank.
        """
        if capacity <= 0:
            raise ControlError("capacity must be positive")
        self.capacity = int(capacity)
        while len(self._families) > self.capacity:
            self._families.popitem(last=False)
            self.stats.evicted_families += 1

    def clear(self) -> None:
        """Drop every family (stats are kept cumulative)."""
        self._families.clear()

"""Pluggable shard executors: real processes behind the worker surface.

The serve layer was built on thread workers
(:class:`~repro.serve.shard.ShardWorker`): cheap to spawn, easy to test,
but GIL-shared and only killable by politely raising
:class:`~repro.errors.ShardKilledError` inside them.  This module adds
the **process backend**: :class:`ProcessShardWorker` runs the same
command loop in a child process, consuming commands over a
``multiprocessing`` queue and reporting heartbeats, session lifecycle
events and epoch outcomes back over another (wire format:
:mod:`repro.serve.ipc`).  The topology crosses once, as a shared-memory
CSR snapshot (:class:`~repro.graph.csr.SharedCSR`) that every child
attaches, and per-epoch deltas ride the command queue as net-effect
batches.

Both backends implement one worker surface, which is what
:class:`~repro.serve.engine.ShardedServeEngine`,
:class:`~repro.serve.health.HealthMonitor` and
:class:`~repro.serve.supervision.Supervisor` program against:

``start() / request_stop() / stop(timeout)``,
``submit_register / submit_deregister / submit_batch / submit_wedge``,
``wait_outcome(epoch, timeout)``,
``alive / started / stop_requested / depth / heartbeat / groups``,
``kill()`` (real SIGKILL here, an injected kill command on threads),
``failure_mode()`` (``crashed`` / ``hung`` / ``killed`` / ``stopped``)
and ``post_mortem()`` (the flight-recorder context fragment).

What a process buys: real multi-core execution, and *real* failure
modes — a SIGKILLed child is detected by its exit sentinel (negative
``exitcode``), a wedged child by heartbeat silence plus the epoch
barrier deadline, and either can be forcibly reclaimed with
``terminate``/``kill`` where a wedged thread could only ever be
abandoned as a zombie.  See ``docs/process_shards.md``.
"""

from __future__ import annotations

import multiprocessing
import os
import queue
import signal
import threading
import time
import traceback
from typing import Callable, Dict, Optional, Set

from repro.algorithms.registry import get_algorithm
from repro.core.classification import KeyPathRule
from repro.core.multiquery import SourceGroup
from repro.errors import SessionStateError, ShardCrashedError
from repro.graph.batch import UpdateBatch
from repro.graph.csr import SharedCSR, SharedCSRMeta
from repro.metrics import OpCounts
from repro.serve.health import Heartbeat
from repro.serve.ipc import (
    CMD_BATCH,
    CMD_DEREGISTER,
    CMD_DIE,
    CMD_REGISTER,
    CMD_STOP,
    CMD_WEDGE,
    OUT_ACK,
    OUT_FATAL,
    OUT_HEARTBEAT,
    OUT_OUTCOME,
    OUT_SESSION,
    decode_batch,
    decode_outcome,
    encode_batch,
    encode_outcome,
)
from repro.serve.session import QuerySession, SessionState

__all__ = ["BACKENDS", "ProcessShardWorker", "resolve_backend"]

#: executor backends the engine accepts
BACKENDS = ("thread", "process")


def resolve_backend(name: str) -> str:
    """Validate a backend name (typed error instead of a silent default)."""
    if name not in BACKENDS:
        raise ValueError(
            f"unknown shard backend {name!r}; expected one of {BACKENDS}"
        )
    return name


def _context():
    """The multiprocessing context for shard children.

    ``fork`` when the platform offers it (fast spawn, no re-import; the
    child immediately enters :func:`_shard_child_main` and touches only
    its own queues and the shared segment), ``spawn`` otherwise.
    """
    methods = multiprocessing.get_all_start_methods()
    return multiprocessing.get_context(
        "fork" if "fork" in methods else "spawn"
    )


# ----------------------------------------------------------------------
# child side
# ----------------------------------------------------------------------
def _shard_child_main(
    index: int,
    meta_tuple,
    algorithm_name: str,
    rule_value: str,
    commands,
    outcomes,
) -> None:
    """Command loop of one shard child process.

    Mirrors :meth:`ShardWorker._serve_loop` semantics exactly — FIFO
    commands, per-source failure isolation inside a batch, heartbeat
    stamps around every command — but everything arrives and leaves
    through the IPC codec.  Top-level (not a closure) so the ``spawn``
    start method can import it.
    """
    try:
        shared = SharedCSR.attach(SharedCSRMeta.from_tuple(meta_tuple))
        graph = shared.graph.to_dynamic()
        shared.close()  # topology copied; drop the mapping immediately
        algorithm = get_algorithm(algorithm_name)
        rule = KeyPathRule(rule_value)
        groups: Dict[int, SourceGroup] = {}
        while True:
            command = commands.get()
            kind = command[0]
            outcomes.put((OUT_HEARTBEAT, "begin", kind))
            try:
                if kind == CMD_STOP:
                    return
                if kind == CMD_REGISTER:
                    _child_register(
                        graph, algorithm, rule, groups, command, outcomes
                    )
                elif kind == CMD_DEREGISTER:
                    group = groups.get(command[1])
                    if group is not None and group.remove_destination(
                        command[2]
                    ):
                        del groups[command[1]]
                elif kind == CMD_BATCH:
                    _child_batch(graph, groups, index, command, outcomes)
                elif kind == CMD_WEDGE:
                    # the wedge fault: spin right here, no heartbeat end,
                    # no outcome for anything queued behind us — exactly
                    # what a busy-looped worker looks like from outside
                    deadline = time.monotonic() + command[1] / 1000.0
                    while time.monotonic() < deadline:
                        time.sleep(0.001)
                elif kind == CMD_DIE:
                    # abrupt nonzero exit (no unwinding, no final beats):
                    # the parent's sentinel sees exitcode > 0 -> crashed
                    os._exit(int(command[1]))
            finally:
                outcomes.put((OUT_HEARTBEAT, "end", None))
                outcomes.put((OUT_ACK,))
    except Exception:  # noqa: BLE001 - last gasp before the child dies
        try:
            outcomes.put((OUT_FATAL, traceback.format_exc()))
        except Exception:  # pragma: no cover - channel already gone
            pass
        os._exit(1)


def _child_register(graph, algorithm, rule, groups, command, outcomes) -> None:
    """Bootstrap one standing query on the child's topology."""
    _, session_id, source, destination = command
    try:
        group = groups.get(source)
        if group is None:
            group = SourceGroup(graph, algorithm, source, [destination], rule)
            group.initialize(OpCounts())
            groups[source] = group
        else:
            group.add_destination(destination)
    except Exception as exc:  # noqa: BLE001 - degrade, never kill the shard
        outcomes.put((OUT_SESSION, session_id, "degraded", str(exc)))
        return
    outcomes.put((OUT_SESSION, session_id, "live", None))


def _child_batch(graph, groups, index, command, outcomes) -> None:
    """Apply one epoch's delta and drive every owned group through it."""
    from repro.serve.shard import ShardBatchOutcome

    _, epoch, rows = command
    effective = decode_batch(rows)
    outcome = ShardBatchOutcome(epoch=epoch, shard=index)
    for upd in effective:
        graph.apply_update(upd, missing_ok=True)
    totals: Dict[str, int] = {}
    for source in list(groups):
        group = groups[source]
        try:
            group_stats = group.process_batch(
                effective, outcome.response_ops, outcome.post_ops
            )
        except Exception as exc:  # noqa: BLE001 - isolate the failure
            del groups[source]
            outcome.degraded.append((source, str(exc)))
            continue
        for key, value in group_stats.items():
            totals[key] = totals.get(key, 0) + value
        for destination in group.destinations:
            outcome.answers[(source, destination)] = group.answer(destination)
    outcome.stats = totals
    outcomes.put((OUT_OUTCOME, encode_outcome(outcome)))


# ----------------------------------------------------------------------
# parent side
# ----------------------------------------------------------------------
class ProcessShardWorker:
    """One shard running as a real OS process.

    The parent keeps a mirror of everything the serve layer reads
    synchronously — heartbeat, inbox depth, owned sources, session
    handles — updated by a small reader thread that drains the child's
    outcome queue.  The ``queue_bound`` inbox contract is enforced
    parent-side: commands in flight (submitted, not yet acked) count
    against the bound, so admission control and the epoch barrier see
    the same backpressure a thread worker's bounded inbox provides.
    """

    backend = "process"

    def __init__(
        self,
        index: int,
        publication: SharedCSR,
        algorithm,
        rule: KeyPathRule = KeyPathRule.PRECISE,
        queue_bound: int = 64,
        clock: Callable[[], float] = time.monotonic,
    ) -> None:
        self.index = index
        self.publication = publication
        self.algorithm = algorithm
        self.rule = rule
        self.queue_bound = queue_bound
        self.heartbeat = Heartbeat(clock)
        #: parent mirror: source -> destinations live on this shard
        self.groups: Dict[int, Set[int]] = {}
        #: last ``fatal`` record the child managed to send, if any
        self.last_error: Optional[str] = None
        ctx = _context()
        self.commands = ctx.Queue()
        self.outcomes = ctx.Queue()
        self.process = ctx.Process(
            target=_shard_child_main,
            args=(
                index,
                publication.meta.as_tuple(),
                algorithm.name,
                rule.value,
                self.commands,
                self.outcomes,
            ),
            name=f"serve-shard-{index}-proc",
            daemon=True,
        )
        self._sessions: Dict[str, QuerySession] = {}
        self._results: Dict[int, object] = {}
        self._state_cv = threading.Condition()
        self._pending = 0
        self._started = False
        self._stop_requested = False
        self._dead = False
        self._killed = False
        self._reader_stop = threading.Event()
        self._reader = threading.Thread(
            target=self._read_loop,
            name=f"serve-shard-{index}-reader",
            daemon=True,
        )

    # ------------------------------------------------------------------
    # lifecycle
    # ------------------------------------------------------------------
    def start(self) -> None:
        """Spawn the child and its reader thread (idempotent)."""
        if not self._started:
            self._started = True
            self.process.start()
            self._reader.start()

    def request_stop(self) -> None:
        """Queue a stop; the child exits at its next command boundary."""
        self._stop_requested = True
        self.commands.put((CMD_STOP,))

    def stop(self, timeout: float = 5.0) -> bool:
        """Stop the child and reclaim everything; True iff it exited.

        Escalation ladder a thread backend cannot offer: polite stop
        command → ``terminate()`` (SIGTERM) → ``kill()`` (SIGKILL).  A
        wedged process is *reclaimed*, not abandoned as a zombie.
        """
        if not self._started:
            self._close_queues()
            return True
        if self.process.is_alive():
            self.request_stop()
            self.process.join(timeout)
            if self.process.is_alive():
                self.process.terminate()
                self.process.join(2.0)
            if self.process.is_alive():  # pragma: no cover - last resort
                self.process.kill()
                self.process.join(2.0)
        self._reader_stop.set()
        self._reader.join(timeout)
        self._close_queues()
        return not self.process.is_alive()

    def _close_queues(self) -> None:
        for q in (self.commands, self.outcomes):
            try:
                q.close()
                q.join_thread()
            except Exception:  # pragma: no cover - already closed
                pass

    @property
    def alive(self) -> bool:
        return self._started and self.process.is_alive() and not self._dead

    @property
    def started(self) -> bool:
        return self._started

    @property
    def stop_requested(self) -> bool:
        return self._stop_requested

    @property
    def depth(self) -> int:
        """Commands in flight (submitted, not yet acked by the child)."""
        with self._state_cv:
            return self._pending

    # ------------------------------------------------------------------
    # commands (called from the harness / engine thread)
    # ------------------------------------------------------------------
    def submit_register(
        self,
        session: QuerySession,
        block: bool,
        timeout: Optional[float] = None,
    ) -> None:
        """Enqueue a registration; ``block=False`` raises ``queue.Full``.

        Only the session *id* crosses the channel — the parent keeps the
        session object and applies the lifecycle transitions the child
        reports back.
        """
        self._sessions[session.id] = session
        self._enqueue(
            (CMD_REGISTER, session.id, session.query.source,
             session.query.destination),
            block=block,
            timeout=timeout,
        )

    def submit_deregister(self, source: int, destination: int) -> None:
        destinations = self.groups.get(source)
        if destinations is not None:
            destinations.discard(destination)
            if not destinations:
                del self.groups[source]
        self._enqueue((CMD_DEREGISTER, source, destination), block=True)

    def submit_batch(
        self,
        epoch: int,
        effective: UpdateBatch,
        context=None,
        timeout: Optional[float] = None,
    ) -> None:
        """Ship one epoch's net-effect delta to the child.

        ``context`` (the ingest trace context) is accepted for surface
        parity but does not cross the process boundary — child-side
        spans would land in a telemetry instance the parent cannot see.
        ``timeout`` bounds the wait for inbox headroom; ``queue.Full``
        on expiry is the engine's cue to fail the shard for the epoch.
        """
        del context
        self._enqueue(
            (CMD_BATCH, epoch, encode_batch(effective)),
            block=True,
            timeout=timeout,
        )

    def submit_wedge(self, millis: int) -> None:
        """Wedge the child in a heartbeat-free busy loop (chaos fault)."""
        self._enqueue((CMD_WEDGE, int(millis)), block=True)

    def submit_die(self, code: int = 3) -> None:
        """Make the child exit abruptly with ``code`` (chaos crash fault)."""
        self._enqueue((CMD_DIE, int(code)), block=True)

    def kill(self) -> None:
        """SIGKILL the child — the real thing, not a simulated exception."""
        if self.process.pid is not None and self.process.is_alive():
            self._killed = True
            os.kill(self.process.pid, signal.SIGKILL)

    def _enqueue(self, command, block: bool, timeout: Optional[float] = None):
        with self._state_cv:
            if not block:
                if self._pending >= self.queue_bound:
                    raise queue.Full()
            else:
                deadline = (
                    None if timeout is None else time.monotonic() + timeout
                )
                while self._pending >= self.queue_bound and not self._dead:
                    remaining = (
                        None if deadline is None
                        else deadline - time.monotonic()
                    )
                    if remaining is not None and remaining <= 0:
                        raise queue.Full()
                    self._state_cv.wait(
                        0.1 if remaining is None else min(remaining, 0.1)
                    )
            self._pending += 1
        self.commands.put(command)

    def wait_outcome(self, epoch: int, timeout: float = 30.0):
        """Block until the child publishes ``epoch``'s outcome.

        One overall deadline — unrelated wake-ups (other epochs, acks)
        never restart the clock, so a silent child costs exactly
        ``timeout`` before the barrier converts it into a failed shard.
        """
        deadline = time.monotonic() + timeout
        with self._state_cv:
            while epoch not in self._results:
                if self._dead:
                    raise ShardCrashedError(
                        f"shard {self.index} {self.exit_description()} "
                        f"before epoch {epoch}"
                    )
                remaining = deadline - time.monotonic()
                if remaining <= 0:
                    raise ShardCrashedError(
                        f"shard {self.index} produced no outcome for epoch "
                        f"{epoch} within {timeout:g}s"
                    )
                self._state_cv.wait(remaining)
            return self._results.pop(epoch)

    # ------------------------------------------------------------------
    # failure taxonomy / post-mortem
    # ------------------------------------------------------------------
    def exit_description(self) -> str:
        """Human-readable account of how the child ended."""
        code = self.process.exitcode
        if code is None:
            return "is still running"
        if code < 0:
            try:
                name = signal.Signals(-code).name
            except ValueError:  # pragma: no cover - exotic signal
                name = str(-code)
            return f"was killed by {name}"
        if code == 0:
            return "exited cleanly"
        return f"crashed with exit code {code}"

    def failure_mode(self) -> Optional[str]:
        """``killed`` / ``crashed`` / ``stopped`` — or None while running.

        The taxonomy the supervision stack consumes: a negative exit
        code is a signal death (``killed``), a positive one an abnormal
        exit (``crashed``), zero a clean stop.  A hung-but-running child
        stays ``None`` here; *hung* is the health monitor's verdict
        (heartbeat silence), not an exit state.
        """
        if not self._started:
            return "stopped"
        code = self.process.exitcode
        if code is None:
            return None
        if code < 0:
            return "killed"
        if code == 0:
            return "stopped"
        return "crashed"

    def post_mortem(self) -> Dict[str, object]:
        """Flight-recorder context for this worker's death.

        The child's per-thread event rings died with its address space;
        this is everything the parent still knows — exit code and
        signal, the last heartbeat it saw, and the inbox depth that was
        pending when the worker stopped answering.
        """
        return {
            "backend": self.backend,
            "shard": self.index,
            "pid": self.process.pid,
            "alive": self.alive,
            "exitcode": self.process.exitcode,
            "exit": self.exit_description(),
            "failure_mode": self.failure_mode(),
            "stop_requested": self._stop_requested,
            "inbox_depth": self.depth,
            "heartbeat": {
                "beats": self.heartbeat.beats,
                "last_beat": self.heartbeat.last_beat,
                "busy_kind": self.heartbeat.busy_kind,
                "busy_seconds": self.heartbeat.busy_seconds,
            },
            "sources": sorted(self.groups),
            "last_error": self.last_error,
        }

    # ------------------------------------------------------------------
    # reader thread
    # ------------------------------------------------------------------
    def _read_loop(self) -> None:
        proc = self.process
        while True:
            try:
                message = self.outcomes.get(timeout=0.1)
            except queue.Empty:
                if not proc.is_alive():
                    self._drain_and_die()
                    return
                if self._reader_stop.is_set():
                    return
                continue
            except (EOFError, OSError):  # pragma: no cover - channel torn
                self._drain_and_die()
                return
            self._dispatch(message)

    def _drain_and_die(self) -> None:
        """Flush what the dead child managed to send, then flip the flag."""
        while True:
            try:
                message = self.outcomes.get_nowait()
            except (queue.Empty, EOFError, OSError):
                break
            try:
                self._dispatch(message)
            except Exception:  # pragma: no cover - truncated final message
                break
        with self._state_cv:
            self._dead = True
            self._state_cv.notify_all()

    def _dispatch(self, message) -> None:
        tag = message[0]
        if tag == OUT_HEARTBEAT:
            if message[1] == "begin":
                self.heartbeat.begin(message[2])
            else:
                self.heartbeat.end()
        elif tag == OUT_ACK:
            with self._state_cv:
                self._pending = max(0, self._pending - 1)
                self._state_cv.notify_all()
        elif tag == OUT_SESSION:
            self._apply_session_event(message[1], message[2], message[3])
        elif tag == OUT_OUTCOME:
            outcome = decode_outcome(message[1])
            for source, _ in outcome.degraded:
                self.groups.pop(source, None)
            with self._state_cv:
                self._results[outcome.epoch] = outcome
                self._state_cv.notify_all()
        elif tag == OUT_FATAL:
            self.last_error = message[1]

    def _apply_session_event(
        self, session_id: str, state: str, reason: Optional[str]
    ) -> None:
        if self._stop_requested:
            return  # retired worker; the replacement owns this session now
        session = self._sessions.get(session_id)
        if session is None:
            return
        if state == "live":
            try:
                session.transition(SessionState.WARMING)
                session.transition(SessionState.LIVE)
            except SessionStateError:
                pass  # closed while still queued (or closing concurrently)
            self.groups.setdefault(session.query.source, set()).add(
                session.query.destination
            )
        else:
            try:
                session.transition(SessionState.DEGRADED, reason=reason)
            except SessionStateError:
                pass  # already closed by the client; nothing to report

    def __repr__(self) -> str:
        return (
            f"ProcessShardWorker(shard={self.index}, "
            f"pid={self.process.pid}, alive={self.alive})"
        )

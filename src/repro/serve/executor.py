"""Pluggable shard executors: real processes behind the worker surface.

The serve layer was built on thread workers
(:class:`~repro.serve.shard.ShardWorker`): cheap to spawn, easy to test,
but GIL-shared and only killable by politely raising
:class:`~repro.errors.ShardKilledError` inside them.  This module adds
the **process backend**: :class:`ProcessShardWorker` runs the same
command loop in a child process, consuming commands over a
``multiprocessing`` queue and reporting heartbeats, session lifecycle
events and epoch outcomes back over another (wire format:
:mod:`repro.serve.ipc`).  The topology crosses once, as a shared-memory
CSR snapshot (:class:`~repro.graph.csr.SharedCSR`) that every child
attaches, and per-epoch deltas ride the command queue as net-effect
batches.

Both backends implement one worker surface, which is what
:class:`~repro.serve.engine.ShardedServeEngine`,
:class:`~repro.serve.health.HealthMonitor` and
:class:`~repro.serve.supervision.Supervisor` program against:

``start() / request_stop() / stop(timeout)``,
``submit_register / submit_deregister / submit_batch / submit_wedge``,
``wait_outcome(epoch, timeout)``,
``alive / started / stop_requested / depth / heartbeat / groups``,
``kill()`` (real SIGKILL here, an injected kill command on threads),
``failure_mode()`` (``crashed`` / ``hung`` / ``killed`` / ``stopped``)
and ``post_mortem()`` (the flight-recorder context fragment).

What a process buys: real multi-core execution, and *real* failure
modes — a SIGKILLed child is detected by its exit sentinel (negative
``exitcode``), a wedged child by heartbeat silence plus the epoch
barrier deadline, and either can be forcibly reclaimed with
``terminate``/``kill`` where a wedged thread could only ever be
abandoned as a zombie.  See ``docs/process_shards.md``.
"""

from __future__ import annotations

import itertools
import multiprocessing
import os
import queue
import signal
import threading
import time
import traceback
from typing import Callable, Dict, Optional, Set

from repro.algorithms.registry import get_algorithm
from repro.core.classification import KeyPathRule
from repro.core.multiquery import SourceGroup
from repro.errors import SessionStateError, ShardCrashedError
from repro.graph.batch import UpdateBatch
from repro.graph.csr import SharedCSR, SharedCSRMeta
from repro.metrics import OpCounts
from repro.obs.metrics import DEFAULT_LATENCY_BUCKETS
from repro.obs.telemetry import Telemetry
from repro.serve.health import Heartbeat
from repro.serve.ipc import (
    CMD_BATCH,
    CMD_DEREGISTER,
    CMD_DIE,
    CMD_REGISTER,
    CMD_STOP,
    CMD_WEDGE,
    OUT_ACK,
    OUT_FATAL,
    OUT_HEARTBEAT,
    OUT_OUTCOME,
    OUT_SESSION,
    OUT_TELEMETRY,
    decode_batch,
    decode_context,
    decode_outcome,
    decode_telemetry_frame,
    encode_batch,
    encode_context,
    encode_outcome,
)
from repro.serve.session import QuerySession, SessionState
from repro.serve.telemetry_agent import ChildTelemetryAgent, read_spill

__all__ = ["BACKENDS", "ProcessShardWorker", "resolve_backend"]

#: executor backends the engine accepts
BACKENDS = ("thread", "process")


def resolve_backend(name: str) -> str:
    """Validate a backend name (typed error instead of a silent default)."""
    if name not in BACKENDS:
        raise ValueError(
            f"unknown shard backend {name!r}; expected one of {BACKENDS}"
        )
    return name


def _context():
    """The multiprocessing context for shard children.

    ``fork`` when the platform offers it (fast spawn, no re-import; the
    child immediately enters :func:`_shard_child_main` and touches only
    its own queues and the shared segment), ``spawn`` otherwise.
    """
    methods = multiprocessing.get_all_start_methods()
    return multiprocessing.get_context(
        "fork" if "fork" in methods else "spawn"
    )


# ----------------------------------------------------------------------
# child side
# ----------------------------------------------------------------------
def _shard_child_main(
    index: int,
    meta_tuple,
    algorithm_name: str,
    rule_value: str,
    commands,
    outcomes,
    telemetry_on: bool = False,
    spill_path: Optional[str] = None,
) -> None:
    """Command loop of one shard child process.

    Mirrors :meth:`ShardWorker._serve_loop` semantics exactly — FIFO
    commands, per-source failure isolation inside a batch, heartbeat
    stamps around every command — but everything arrives and leaves
    through the IPC codec.  With ``telemetry_on`` the child installs a
    :class:`~repro.serve.telemetry_agent.ChildTelemetryAgent`: spans join
    the ingest trace the batch command carried, and each command boundary
    flushes an ``OUT_TELEMETRY`` frame plus the crash spill file.
    Top-level (not a closure) so the ``spawn`` start method can import it.
    """
    try:
        shared = SharedCSR.attach(SharedCSRMeta.from_tuple(meta_tuple))
        graph = shared.graph.to_dynamic()
        shared.close()  # topology copied; drop the mapping immediately
        algorithm = get_algorithm(algorithm_name)
        rule = KeyPathRule(rule_value)
        agent = (
            ChildTelemetryAgent(index, outcomes, spill_path=spill_path)
            if telemetry_on else None
        )
        groups: Dict[int, SourceGroup] = {}
        while True:
            command = commands.get()
            kind = command[0]
            outcomes.put((OUT_HEARTBEAT, "begin", kind))
            try:
                if kind == CMD_STOP:
                    return
                if kind == CMD_REGISTER:
                    _child_register(
                        graph, algorithm, rule, groups, command, outcomes
                    )
                elif kind == CMD_DEREGISTER:
                    group = groups.get(command[1])
                    if group is not None and group.remove_destination(
                        command[2]
                    ):
                        del groups[command[1]]
                elif kind == CMD_BATCH:
                    _child_batch(
                        graph, groups, index, command, outcomes, agent
                    )
                elif kind == CMD_WEDGE:
                    # the wedge fault: spin right here, no heartbeat end,
                    # no outcome for anything queued behind us — exactly
                    # what a busy-looped worker looks like from outside
                    deadline = time.monotonic() + command[1] / 1000.0
                    while time.monotonic() < deadline:
                        time.sleep(0.001)
                elif kind == CMD_DIE:
                    # abrupt nonzero exit (no unwinding, no final beats):
                    # the parent's sentinel sees exitcode > 0 -> crashed
                    os._exit(int(command[1]))
            finally:
                if agent is not None:
                    # frame before the ack, so by the time the parent
                    # sees the command retired its telemetry is merged
                    agent.flush()
                outcomes.put((OUT_HEARTBEAT, "end", None))
                outcomes.put((OUT_ACK,))
    except Exception:  # noqa: BLE001 - last gasp before the child dies
        try:
            outcomes.put((OUT_FATAL, traceback.format_exc()))
        except Exception:  # pragma: no cover - channel already gone
            pass
        os._exit(1)


def _child_register(graph, algorithm, rule, groups, command, outcomes) -> None:
    """Bootstrap one standing query on the child's topology."""
    _, session_id, source, destination = command
    try:
        group = groups.get(source)
        if group is None:
            group = SourceGroup(graph, algorithm, source, [destination], rule)
            group.initialize(OpCounts())
            groups[source] = group
        else:
            group.add_destination(destination)
    except Exception as exc:  # noqa: BLE001 - degrade, never kill the shard
        outcomes.put((OUT_SESSION, session_id, "degraded", str(exc)))
        return
    outcomes.put((OUT_SESSION, session_id, "live", None))


def _child_batch(graph, groups, index, command, outcomes, agent=None) -> None:
    """Apply one epoch's delta and drive every owned group through it.

    With a telemetry agent the ingest :class:`TraceContext` the command
    carried is re-activated around a ``shard.batch`` span — the same
    idiom as :meth:`ShardWorker._handle_batch` — so the child's spans
    join the batch's causal tree once the parent merges its frames.
    """
    _, epoch, rows, ctx = command
    effective = decode_batch(rows)
    if agent is None:
        outcome = _child_process_epoch(
            graph, groups, index, epoch, effective, None
        )
    else:
        telemetry = agent.telemetry
        with telemetry.tracer.activate(decode_context(ctx)):
            with telemetry.span(
                "shard.batch", shard=index, epoch=epoch,
                updates=len(effective),
            ) as span:
                outcome = _child_process_epoch(
                    graph, groups, index, epoch, effective, telemetry
                )
                span.set(
                    groups=len(groups),
                    answers=len(outcome.answers),
                    degraded=len(outcome.degraded),
                )
    outcomes.put((OUT_OUTCOME, encode_outcome(outcome)))


def _child_process_epoch(graph, groups, index, epoch, effective, telemetry):
    """The epoch body shared by the traced and untraced child paths."""
    from repro.serve.shard import ShardBatchOutcome

    outcome = ShardBatchOutcome(epoch=epoch, shard=index)
    for upd in effective:
        graph.apply_update(upd, missing_ok=True)
    totals: Dict[str, int] = {}
    for source in list(groups):
        group = groups[source]
        try:
            group_stats = group.process_batch(
                effective, outcome.response_ops, outcome.post_ops
            )
        except Exception as exc:  # noqa: BLE001 - isolate the failure
            del groups[source]
            outcome.degraded.append((source, str(exc)))
            if telemetry is not None:
                telemetry.point(
                    "shard.degraded", shard=index, epoch=epoch,
                    source=source, error=str(exc),
                )
            continue
        for key, value in group_stats.items():
            totals[key] = totals.get(key, 0) + value
        for destination in group.destinations:
            outcome.answers[(source, destination)] = group.answer(destination)
    outcome.stats = totals
    return outcome


# ----------------------------------------------------------------------
# parent side
# ----------------------------------------------------------------------
class ProcessShardWorker:
    """One shard running as a real OS process.

    The parent keeps a mirror of everything the serve layer reads
    synchronously — heartbeat, inbox depth, owned sources, session
    handles — updated by a small reader thread that drains the child's
    outcome queue.  The ``queue_bound`` inbox contract is enforced
    parent-side: commands in flight (submitted, not yet acked) count
    against the bound, so admission control and the epoch barrier see
    the same backpressure a thread worker's bounded inbox provides.
    """

    backend = "process"

    #: distinguishes spill files across worker generations in one run
    _spill_seq = itertools.count(1)

    def __init__(
        self,
        index: int,
        publication: SharedCSR,
        algorithm,
        rule: KeyPathRule = KeyPathRule.PRECISE,
        queue_bound: int = 64,
        clock: Callable[[], float] = time.monotonic,
        telemetry_source: Optional[
            Callable[[], Optional[Telemetry]]
        ] = None,
        spill_dir: Optional[str] = None,
    ) -> None:
        self.index = index
        self.publication = publication
        self.algorithm = algorithm
        self.rule = rule
        self.queue_bound = queue_bound
        self.heartbeat = Heartbeat(clock)
        #: parent mirror: source -> destinations live on this shard
        self.groups: Dict[int, Set[int]] = {}
        #: last ``fatal`` record the child managed to send, if any
        self.last_error: Optional[str] = None
        #: deferred lookup, same contract as the thread worker — but the
        #: child's agent is armed at *spawn*: telemetry attached after the
        #: process started cannot retrofit an already-forked child
        self.telemetry_source = telemetry_source
        telemetry_on = (
            telemetry_source is not None and telemetry_source() is not None
        )
        #: where the child spills its flight ring for post-kill harvest
        self.spill_path: Optional[str] = None
        if telemetry_on and spill_dir is not None:
            os.makedirs(spill_dir, exist_ok=True)
            self.spill_path = os.path.join(
                spill_dir,
                f"shard-{index}-gen{next(self._spill_seq)}.jsonl",
            )
        ctx = _context()
        self.commands = ctx.Queue()
        self.outcomes = ctx.Queue()
        self.process = ctx.Process(
            target=_shard_child_main,
            args=(
                index,
                publication.meta.as_tuple(),
                algorithm.name,
                rule.value,
                self.commands,
                self.outcomes,
                telemetry_on,
                self.spill_path,
            ),
            name=f"serve-shard-{index}-proc",
            daemon=True,
        )
        self._sessions: Dict[str, QuerySession] = {}
        self._results: Dict[int, object] = {}
        self._state_cv = threading.Condition()
        self._pending = 0
        self._started = False
        self._stop_requested = False
        self._dead = False
        self._killed = False
        self._reader_stop = threading.Event()
        self._reader = threading.Thread(
            target=self._read_loop,
            name=f"serve-shard-{index}-reader",
            daemon=True,
        )

    # ------------------------------------------------------------------
    # lifecycle
    # ------------------------------------------------------------------
    def start(self) -> None:
        """Spawn the child and its reader thread (idempotent)."""
        if not self._started:
            self._started = True
            self.process.start()
            self._reader.start()

    def request_stop(self) -> None:
        """Queue a stop; the child exits at its next command boundary."""
        self._stop_requested = True
        self.commands.put((CMD_STOP,))

    def stop(self, timeout: float = 5.0) -> bool:
        """Stop the child and reclaim everything; True iff it exited.

        Escalation ladder a thread backend cannot offer: polite stop
        command → ``terminate()`` (SIGTERM) → ``kill()`` (SIGKILL).  A
        wedged process is *reclaimed*, not abandoned as a zombie.
        """
        if not self._started:
            self._close_queues()
            return True
        if self.process.is_alive():
            self.request_stop()
            self.process.join(timeout)
            if self.process.is_alive():
                self.process.terminate()
                self.process.join(2.0)
            if self.process.is_alive():  # pragma: no cover - last resort
                self.process.kill()
                self.process.join(2.0)
        self._reader_stop.set()
        self._reader.join(timeout)
        self._close_queues()
        return not self.process.is_alive()

    def _close_queues(self) -> None:
        for q in (self.commands, self.outcomes):
            try:
                q.close()
                q.join_thread()
            except Exception:  # pragma: no cover - already closed
                pass

    @property
    def alive(self) -> bool:
        return self._started and self.process.is_alive() and not self._dead

    @property
    def started(self) -> bool:
        return self._started

    @property
    def stop_requested(self) -> bool:
        return self._stop_requested

    @property
    def depth(self) -> int:
        """Commands in flight (submitted, not yet acked by the child)."""
        with self._state_cv:
            return self._pending

    # ------------------------------------------------------------------
    # commands (called from the harness / engine thread)
    # ------------------------------------------------------------------
    def submit_register(
        self,
        session: QuerySession,
        block: bool,
        timeout: Optional[float] = None,
    ) -> None:
        """Enqueue a registration; ``block=False`` raises ``queue.Full``.

        Only the session *id* crosses the channel — the parent keeps the
        session object and applies the lifecycle transitions the child
        reports back.
        """
        self._sessions[session.id] = session
        self._enqueue(
            (CMD_REGISTER, session.id, session.query.source,
             session.query.destination),
            block=block,
            timeout=timeout,
        )

    def submit_deregister(self, source: int, destination: int) -> None:
        destinations = self.groups.get(source)
        if destinations is not None:
            destinations.discard(destination)
            if not destinations:
                del self.groups[source]
        self._enqueue((CMD_DEREGISTER, source, destination), block=True)

    def submit_batch(
        self,
        epoch: int,
        effective: UpdateBatch,
        context=None,
        timeout: Optional[float] = None,
    ) -> None:
        """Ship one epoch's net-effect delta to the child.

        ``context`` (the ingest trace context) crosses the process
        boundary as a primitive ``(trace_id, parent_span_id)`` pair; the
        child re-activates it so its ``shard.batch`` span joins the
        ingest batch's causal tree (the frames come back over the
        outcome queue and are merged by the reader thread).  ``timeout``
        bounds the wait for inbox headroom; ``queue.Full`` on expiry is
        the engine's cue to fail the shard for the epoch.
        """
        self._enqueue(
            (CMD_BATCH, epoch, encode_batch(effective),
             encode_context(context)),
            block=True,
            timeout=timeout,
        )

    def submit_wedge(self, millis: int) -> None:
        """Wedge the child in a heartbeat-free busy loop (chaos fault)."""
        self._enqueue((CMD_WEDGE, int(millis)), block=True)

    def submit_die(self, code: int = 3) -> None:
        """Make the child exit abruptly with ``code`` (chaos crash fault)."""
        self._enqueue((CMD_DIE, int(code)), block=True)

    def kill(self) -> None:
        """SIGKILL the child — the real thing, not a simulated exception."""
        if self.process.pid is not None and self.process.is_alive():
            self._killed = True
            os.kill(self.process.pid, signal.SIGKILL)

    def _enqueue(self, command, block: bool, timeout: Optional[float] = None):
        with self._state_cv:
            if not block:
                if self._pending >= self.queue_bound:
                    raise queue.Full()
            else:
                deadline = (
                    None if timeout is None else time.monotonic() + timeout
                )
                while self._pending >= self.queue_bound and not self._dead:
                    remaining = (
                        None if deadline is None
                        else deadline - time.monotonic()
                    )
                    if remaining is not None and remaining <= 0:
                        raise queue.Full()
                    self._state_cv.wait(
                        0.1 if remaining is None else min(remaining, 0.1)
                    )
            self._pending += 1
        self.commands.put(command)

    def wait_outcome(self, epoch: int, timeout: float = 30.0):
        """Block until the child publishes ``epoch``'s outcome.

        One overall deadline — unrelated wake-ups (other epochs, acks)
        never restart the clock, so a silent child costs exactly
        ``timeout`` before the barrier converts it into a failed shard.
        """
        deadline = time.monotonic() + timeout
        with self._state_cv:
            while epoch not in self._results:
                if self._dead:
                    raise ShardCrashedError(
                        f"shard {self.index} {self.exit_description()} "
                        f"before epoch {epoch}"
                    )
                remaining = deadline - time.monotonic()
                if remaining <= 0:
                    raise ShardCrashedError(
                        f"shard {self.index} produced no outcome for epoch "
                        f"{epoch} within {timeout:g}s"
                    )
                self._state_cv.wait(remaining)
            return self._results.pop(epoch)

    # ------------------------------------------------------------------
    # failure taxonomy / post-mortem
    # ------------------------------------------------------------------
    def exit_description(self) -> str:
        """Human-readable account of how the child ended."""
        code = self.process.exitcode
        if code is None:
            return "is still running"
        if code < 0:
            try:
                name = signal.Signals(-code).name
            except ValueError:  # pragma: no cover - exotic signal
                name = str(-code)
            return f"was killed by {name}"
        if code == 0:
            return "exited cleanly"
        return f"crashed with exit code {code}"

    def failure_mode(self) -> Optional[str]:
        """``killed`` / ``crashed`` / ``stopped`` — or None while running.

        The taxonomy the supervision stack consumes: a negative exit
        code is a signal death (``killed``), a positive one an abnormal
        exit (``crashed``), zero a clean stop.  A hung-but-running child
        stays ``None`` here; *hung* is the health monitor's verdict
        (heartbeat silence), not an exit state.
        """
        if not self._started:
            return "stopped"
        code = self.process.exitcode
        if code is None:
            return None
        if code < 0:
            return "killed"
        if code == 0:
            return "stopped"
        return "crashed"

    def post_mortem(self) -> Dict[str, object]:
        """Flight-recorder context for this worker's death.

        Besides everything the parent still knows — exit code and
        signal, the last heartbeat it saw, and the inbox depth that was
        pending when the worker stopped answering — this harvests the
        child's flight-ring *spill file* (written after every command by
        its telemetry agent), so a SIGKILLed child's last events survive
        the loss of its address space and land in the shard-crash
        bundle.
        """
        data: Dict[str, object] = {
            "backend": self.backend,
            "shard": self.index,
            "pid": self.process.pid,
            "alive": self.alive,
            "exitcode": self.process.exitcode,
            "exit": self.exit_description(),
            "failure_mode": self.failure_mode(),
            "stop_requested": self._stop_requested,
            "inbox_depth": self.depth,
            "heartbeat": {
                "beats": self.heartbeat.beats,
                "last_beat": self.heartbeat.last_beat,
                "busy_kind": self.heartbeat.busy_kind,
                "busy_seconds": self.heartbeat.busy_seconds,
            },
            "sources": sorted(self.groups),
            "last_error": self.last_error,
        }
        harvested = (
            read_spill(self.spill_path)
            if self.spill_path is not None else None
        )
        if harvested is not None:
            data["child_flight"] = {
                "spill_path": self.spill_path,
                "pid": harvested["pid"],
                "events": harvested["events"],
            }
        return data

    # ------------------------------------------------------------------
    # reader thread
    # ------------------------------------------------------------------
    def _read_loop(self) -> None:
        proc = self.process
        while True:
            try:
                message = self.outcomes.get(timeout=0.1)
            except queue.Empty:
                if not proc.is_alive():
                    self._drain_and_die()
                    return
                if self._reader_stop.is_set():
                    return
                continue
            except (EOFError, OSError):  # pragma: no cover - channel torn
                self._drain_and_die()
                return
            self._dispatch(message)

    def _drain_and_die(self) -> None:
        """Flush what the dead child managed to send, then flip the flag."""
        while True:
            try:
                message = self.outcomes.get_nowait()
            except (queue.Empty, EOFError, OSError):
                break
            try:
                self._dispatch(message)
            except Exception:  # pragma: no cover - truncated final message
                break
        with self._state_cv:
            self._dead = True
            self._state_cv.notify_all()

    def _dispatch(self, message) -> None:
        tag = message[0]
        if tag == OUT_HEARTBEAT:
            if message[1] == "begin":
                self.heartbeat.begin(message[2])
            else:
                self.heartbeat.end()
        elif tag == OUT_ACK:
            with self._state_cv:
                self._pending = max(0, self._pending - 1)
                self._state_cv.notify_all()
        elif tag == OUT_SESSION:
            self._apply_session_event(message[1], message[2], message[3])
        elif tag == OUT_OUTCOME:
            outcome = decode_outcome(message[1])
            for source, _ in outcome.degraded:
                self.groups.pop(source, None)
            with self._state_cv:
                self._results[outcome.epoch] = outcome
                self._state_cv.notify_all()
        elif tag == OUT_TELEMETRY:
            try:
                self._merge_telemetry(decode_telemetry_frame(message[1]))
            except Exception:  # noqa: BLE001 - telemetry never kills reads
                pass
        elif tag == OUT_FATAL:
            self.last_error = message[1]

    def _merge_telemetry(self, frame: Dict[str, object]) -> None:
        """Fold one child frame into the parent's telemetry.

        Events are re-emitted into the parent :class:`EventLog` (and thus
        re-tapped into the parent flight recorder under this reader
        thread's ring) with ``worker``/``pid`` labels and their
        timestamps shifted into the parent's clock domain via the skew
        handshake.  Counter deltas and gauge levels land in the parent
        registry with a ``worker`` label; ``span_seconds`` is re-derived
        here from the merged span durations (child histograms never
        cross the wire).
        """
        source = self.telemetry_source
        telemetry = source() if source is not None else None
        if telemetry is None:
            return  # parent stopped observing; drop the frame
        worker = f"shard-{self.index}"
        # child ts -> wall clock (child skew) -> parent perf_counter
        shift = float(frame["skew"]) - (time.time() - time.perf_counter())
        for row in frame["events"]:
            payload = dict(row)
            ts = float(payload.pop("ts")) + shift
            kind = str(payload.pop("kind"))
            name = str(payload.pop("name"))
            payload.setdefault("worker", worker)
            payload.setdefault("pid", frame["pid"])
            if "thread" in payload:
                # qualify the child's thread name with its worker so the
                # waterfall's thread column distinguishes processes
                payload["thread"] = f"{worker}/{payload['thread']}"
            telemetry.events.emit(kind, name, ts=ts, **payload)
            if kind == "span" and "duration" in payload:
                telemetry.registry.histogram(
                    "span_seconds",
                    labels={"span": name, "worker": worker},
                    buckets=DEFAULT_LATENCY_BUCKETS,
                ).observe(float(payload["duration"]))
        for name, labels, delta in frame["counters"]:
            telemetry.registry.counter(
                name, {**dict(labels), "worker": worker}
            ).inc(delta)
        for name, labels, value in frame["gauges"]:
            telemetry.registry.gauge(
                name, {**dict(labels), "worker": worker}
            ).set(value)

    def _apply_session_event(
        self, session_id: str, state: str, reason: Optional[str]
    ) -> None:
        if self._stop_requested:
            return  # retired worker; the replacement owns this session now
        session = self._sessions.get(session_id)
        if session is None:
            return
        if state == "live":
            try:
                session.transition(SessionState.WARMING)
                session.transition(SessionState.LIVE)
            except SessionStateError:
                pass  # closed while still queued (or closing concurrently)
            self.groups.setdefault(session.query.source, set()).add(
                session.query.destination
            )
        else:
            try:
                session.transition(SessionState.DEGRADED, reason=reason)
            except SessionStateError:
                pass  # already closed by the client; nothing to report

    def __repr__(self) -> str:
        return (
            f"ProcessShardWorker(shard={self.index}, "
            f"pid={self.process.pid}, alive={self.alive})"
        )

"""Sharded worker pool: per-shard threads owning source groups.

Sessions are partitioned by *source* (``shard = source % num_shards``),
because everything shareable in pairwise streaming analytics is shared
along the source (see :mod:`repro.core.multiquery`): one shard owns the
:class:`~repro.core.multiquery.SourceGroup` — converged state array plus
per-destination key paths — of every source assigned to it.

Each worker runs one daemon thread consuming a **bounded** inbox of
commands in FIFO order:

* ``register`` / ``deregister`` — attach or detach a standing query;
  brand-new sources are bootstrapped with a full computation *on the
  shard's own graph copy*, so warming one session never stalls batches on
  other shards;
* ``batch`` — apply one net-effect batch to the shard-local topology and
  drive every owned group through contribution-aware processing, then
  publish a :class:`ShardBatchOutcome` for the epoch.

Every shard holds a private :class:`~repro.graph.dynamic.DynamicGraph`
copy that it alone mutates — no cross-thread topology sharing, hence no
locks on the hot path.  A failure inside one group's processing (or an
injected fault) degrades only that source: the group is dropped, the
failure is reported in the outcome, and all other groups' answers for the
same epoch stay exact.
"""

from __future__ import annotations

import queue
import threading
import time
from dataclasses import dataclass, field
from typing import Callable, Dict, List, Optional, Tuple

from repro.algorithms.base import MonotonicAlgorithm
from repro.core.classification import KeyPathRule
from repro.core.multiquery import SourceGroup
from repro.errors import SessionStateError, ShardCrashedError, ShardKilledError
from repro.graph.batch import UpdateBatch
from repro.graph.dynamic import DynamicGraph
from repro.metrics import OpCounts
from repro.obs.provenance import GroupObservation, ProvenanceRecorder
from repro.obs.telemetry import Telemetry
from repro.obs.tracing import TraceContext
from repro.serve.health import Heartbeat
from repro.serve.session import QuerySession, SessionState

#: fault-injection hook signature: (kind, source, epoch) -> None; raising
#: inside ``"batch"`` degrades that source, inside ``"register"`` degrades
#: the registering session; blocking inside either stalls the shard (used
#: by tests to fill the bounded inbox deterministically); raising
#: :class:`~repro.errors.ShardKilledError` escapes the per-source isolation
#: and kills the whole worker thread (the chaos harness's shard-kill fault)
FaultHook = Callable[[str, int, int], None]


@dataclass
class ShardBatchOutcome:
    """What one shard produced for one epoch."""

    epoch: int
    shard: int
    #: converged answers keyed ``(source, destination)``
    answers: Dict[Tuple[int, int], float] = field(default_factory=dict)
    response_ops: OpCounts = field(default_factory=OpCounts)
    post_ops: OpCounts = field(default_factory=OpCounts)
    stats: Dict[str, int] = field(default_factory=dict)
    #: sources whose group failed this epoch, with the failure text
    degraded: List[Tuple[int, str]] = field(default_factory=list)


class ShardWorker:
    """One worker thread owning the source groups of its shard.

    ``queue_bound`` caps the inbox; the harness checks headroom *before*
    enqueueing (admission control), while committed batches use a blocking
    put — a WAL-durable batch must never be shed.  The put may still be
    *bounded in time* (``submit_batch(timeout=...)``): when a wedged
    worker's inbox stays full past the epoch deadline, the engine fails
    the shard for the epoch instead of blocking ingest forever.
    """

    backend = "thread"

    def __init__(
        self,
        index: int,
        graph: DynamicGraph,
        algorithm: MonotonicAlgorithm,
        rule: KeyPathRule = KeyPathRule.PRECISE,
        queue_bound: int = 64,
        fault_hook: Optional[FaultHook] = None,
        clock: Callable[[], float] = time.monotonic,
        telemetry_source: Optional[Callable[[], Optional[Telemetry]]] = None,
        provenance: Optional[ProvenanceRecorder] = None,
    ) -> None:
        self.index = index
        self.graph = graph
        self.algorithm = algorithm
        self.rule = rule
        self.fault_hook = fault_hook
        #: deferred lookup, not a captured instance: the engine's telemetry
        #: may be attached after workers are built (pipeline wrap order)
        self.telemetry_source = telemetry_source
        self.provenance = provenance
        self.inbox: "queue.Queue" = queue.Queue(maxsize=queue_bound)
        self.groups: Dict[int, SourceGroup] = {}
        self.heartbeat = Heartbeat(clock)
        self._results: Dict[int, ShardBatchOutcome] = {}
        self._results_cv = threading.Condition()
        self._thread = threading.Thread(
            target=self._run, name=f"serve-shard-{index}", daemon=True
        )
        self._started = False
        self._stop_requested = False
        #: set by the worker itself on the way out (is_alive() lags: the
        #: thread is still "alive" while running its own cleanup)
        self._dead = False
        #: :meth:`kill` was requested — the thread analogue of a pending
        #: SIGKILL, honoured at the next command boundary
        self._die_requested = False
        #: the worker actually died from a kill (vs crash/stop)
        self._killed = False

    # ------------------------------------------------------------------
    # lifecycle
    # ------------------------------------------------------------------
    def start(self) -> None:
        """Start the worker thread (idempotent)."""
        if not self._started:
            self._started = True
            self._thread.start()

    def request_stop(self) -> None:
        """Ask the worker to drain and exit, without joining (idempotent).

        Used by the supervisor when retiring a hung or replaced worker:
        the stop flag makes the thread exit at its next command boundary,
        and the sentinel wakes it if it is idle in ``inbox.get()``.  When
        the inbox is full (a wedged worker with backlog) the sentinel is
        skipped — the flag alone suffices once the worker resumes.
        """
        self._stop_requested = True
        try:
            self.inbox.put_nowait(("stop",))
        except queue.Full:
            pass  # flag is set; the worker checks it between commands

    def stop(self, timeout: float = 5.0) -> bool:
        """Stop the worker and join it; True iff the thread exited.

        Never raises on a straggler — the caller
        (:meth:`~repro.serve.engine.ShardedServeEngine.close`) aggregates
        survivors into one typed :class:`~repro.errors.ShardShutdownError`.
        """
        if not self._started:
            return True
        if self._thread.is_alive():
            self.request_stop()
            self._thread.join(timeout)
        return not self._thread.is_alive()

    @property
    def alive(self) -> bool:
        return self._thread.is_alive() and not self._dead

    @property
    def started(self) -> bool:
        return self._started

    @property
    def stop_requested(self) -> bool:
        return self._stop_requested

    @property
    def depth(self) -> int:
        """Current inbox depth (the admission-control probe)."""
        return self.inbox.qsize()

    # ------------------------------------------------------------------
    # commands (called from the harness / engine thread)
    # ------------------------------------------------------------------
    def submit_register(self, session: QuerySession, block: bool,
                        timeout: Optional[float] = None) -> None:
        """Enqueue a registration; ``block=False`` raises ``queue.Full``."""
        self.inbox.put(("register", session), block=block, timeout=timeout)

    def submit_deregister(self, source: int, destination: int) -> None:
        self.inbox.put(("deregister", source, destination))

    def submit_batch(
        self,
        epoch: int,
        effective: UpdateBatch,
        context: Optional[TraceContext] = None,
        timeout: Optional[float] = None,
    ) -> None:
        """Enqueue a committed batch (blocking: durable batches never shed).

        ``context`` is the ingest thread's trace context: the worker
        re-activates it around the epoch's processing so the shard-side
        spans parent onto the engine's batch span (one causal tree
        instead of per-thread silos).

        ``timeout`` bounds the wait for inbox headroom.  A worker wedged
        mid-command never drains its inbox, so an unbounded put here
        would block the ingest thread forever — exactly the hang the
        epoch barrier exists to prevent.  On expiry ``queue.Full``
        propagates and the engine converts it into a ``failed_shards``
        entry for the epoch.
        """
        self.inbox.put(("batch", epoch, effective, context), timeout=timeout)

    def submit_wedge(self, millis: int) -> None:
        """Wedge the worker in a busy loop for ``millis`` (chaos fault).

        Unlike the ``fault_hook``-based hang (which parks on an event the
        driver controls), the wedge burns real wall-clock inside one
        command: heartbeats stop, ``busy_seconds`` grows, the inbox backs
        up — the observable signature of a worker stuck in a hot loop.
        """
        self.inbox.put(("wedge", int(millis)))

    def kill(self) -> None:
        """Best-effort immediate kill — the thread analogue of SIGKILL.

        Threads cannot be killed from outside, so this is honoured at the
        next command boundary: the worker raises
        :class:`~repro.errors.ShardKilledError` and dies without draining
        its inbox or publishing pending outcomes.  The process backend
        overrides this with a real ``os.kill``.
        """
        self._die_requested = True
        try:
            self.inbox.put_nowait(("die",))
        except queue.Full:
            pass  # flag is set; the worker checks it between commands

    def wait_outcome(self, epoch: int, timeout: float = 30.0) -> ShardBatchOutcome:
        """Block until this shard publishes its outcome for ``epoch``.

        The deadline is *overall*, stamped once — unrelated wake-ups
        (other epochs' outcomes being published) never restart the
        clock, so a silent worker costs exactly ``timeout`` before the
        barrier converts it into a failed shard.
        """
        deadline = time.monotonic() + timeout
        with self._results_cv:
            while epoch not in self._results:
                if self._dead or not self._thread.is_alive():
                    raise ShardCrashedError(
                        f"shard {self.index} died before epoch {epoch}"
                    )
                remaining = deadline - time.monotonic()
                if remaining <= 0:
                    raise ShardCrashedError(
                        f"shard {self.index} produced no outcome for epoch "
                        f"{epoch} within {timeout:g}s"
                    )
                self._results_cv.wait(remaining)
            return self._results.pop(epoch)

    # ------------------------------------------------------------------
    # failure taxonomy / post-mortem
    # ------------------------------------------------------------------
    def failure_mode(self) -> Optional[str]:
        """``killed`` / ``crashed`` / ``stopped`` — or None while alive."""
        if not self._started:
            return "stopped"
        if self._thread.is_alive() and not self._dead:
            return None
        if self._killed:
            return "killed"
        if self._stop_requested:
            return "stopped"
        return "crashed"

    def post_mortem(self) -> Dict[str, object]:
        """Flight-recorder context fragment for this worker's death."""
        return {
            "backend": self.backend,
            "shard": self.index,
            "alive": self.alive,
            "failure_mode": self.failure_mode(),
            "stop_requested": self._stop_requested,
            "inbox_depth": self.depth,
            "heartbeat": {
                "beats": self.heartbeat.beats,
                "last_beat": self.heartbeat.last_beat,
                "busy_kind": self.heartbeat.busy_kind,
                "busy_seconds": self.heartbeat.busy_seconds,
            },
            "sources": sorted(self.groups),
        }

    # ------------------------------------------------------------------
    # worker thread body
    # ------------------------------------------------------------------
    def _run(self) -> None:
        try:
            self._serve_loop()
        except ShardKilledError:
            self._killed = True  # injected thread death; no stderr noise
        finally:
            self.heartbeat.end()
            with self._results_cv:
                # wake any barrier waiting on an outcome this thread will
                # never publish; it re-checks liveness and raises at once
                self._dead = True
                self._results_cv.notify_all()

    def _serve_loop(self) -> None:
        while True:
            command = self.inbox.get()
            kind = command[0]
            self.heartbeat.begin(kind)
            try:
                if kind == "die" or self._die_requested:
                    raise ShardKilledError(
                        f"shard {self.index} killed by injected SIGKILL"
                    )
                if kind == "stop" or self._stop_requested:
                    return
                if kind == "register":
                    self._handle_register(command[1])
                elif kind == "deregister":
                    self._handle_deregister(command[1], command[2])
                elif kind == "batch":
                    self._handle_batch(
                        command[1], command[2],
                        command[3] if len(command) > 3 else None,
                    )
                elif kind == "barrier":
                    # chaos/test primitive: park until released (bounded)
                    command[1].wait(timeout=30.0)
                elif kind == "wedge":
                    # chaos wedge fault: a genuine busy loop — no event to
                    # release, no heartbeat end until the spin expires; a
                    # pending kill is the only thing that breaks it early
                    deadline = time.monotonic() + command[1] / 1000.0
                    while time.monotonic() < deadline:
                        if self._die_requested:
                            raise ShardKilledError(
                                f"shard {self.index} killed mid-wedge"
                            )
                        time.sleep(0.001)
            finally:
                self.heartbeat.end()
                self.inbox.task_done()

    def _handle_register(self, session: QuerySession) -> None:
        if self._stop_requested:
            return  # retired worker; the replacement owns this session now
        query = session.query
        try:
            session.transition(SessionState.WARMING)
        except SessionStateError:
            return  # closed while still queued (or closing concurrently)
        try:
            if self.fault_hook is not None:
                self.fault_hook("register", query.source, -1)
            group = self.groups.get(query.source)
            if group is None:
                group = SourceGroup(
                    self.graph,
                    self.algorithm,
                    query.source,
                    [query.destination],
                    self.rule,
                )
                group.initialize(OpCounts())
                self.groups[query.source] = group
            else:
                group.add_destination(query.destination)
        except ShardKilledError as exc:
            # the kill signal escapes session isolation: degrade the
            # session (its bootstrap is lost) and take the thread down
            try:
                session.transition(SessionState.DEGRADED, reason=str(exc))
            except SessionStateError:
                pass
            raise
        except Exception as exc:  # noqa: BLE001 - degrade, never kill the shard
            try:
                session.transition(SessionState.DEGRADED, reason=str(exc))
            except SessionStateError:
                pass  # already closed by the client; nothing to report
            return
        try:
            session.transition(SessionState.LIVE)
        except SessionStateError:
            pass  # closed while warming: the group stays, harmlessly

    def _handle_deregister(self, source: int, destination: int) -> None:
        group = self.groups.get(source)
        if group is not None and group.remove_destination(destination):
            del self.groups[source]

    def _handle_batch(
        self,
        epoch: int,
        effective: UpdateBatch,
        context: Optional[TraceContext] = None,
    ) -> None:
        telemetry = (
            self.telemetry_source() if self.telemetry_source is not None
            else None
        )
        if telemetry is None:
            self._process_epoch(epoch, effective, None)
            return
        # adopt the ingest thread's context so this thread's spans join
        # the batch's causal tree instead of rooting a disconnected one
        with telemetry.tracer.activate(context):
            with telemetry.span(
                "shard.batch", shard=self.index, epoch=epoch,
                updates=len(effective),
            ) as span:
                outcome = self._process_epoch(epoch, effective, telemetry)
                span.set(
                    groups=len(self.groups),
                    answers=len(outcome.answers),
                    degraded=len(outcome.degraded),
                )

    def _process_epoch(
        self,
        epoch: int,
        effective: UpdateBatch,
        telemetry: Optional[Telemetry],
    ) -> ShardBatchOutcome:
        outcome = ShardBatchOutcome(epoch=epoch, shard=self.index)
        provenance = self.provenance
        for upd in effective:
            self.graph.apply_update(upd, missing_ok=True)
        totals: Dict[str, int] = {}
        for source in list(self.groups):
            group = self.groups[source]
            observation = (
                GroupObservation(group, effective, provenance.sample_limit)
                if provenance is not None else None
            )
            try:
                if self.fault_hook is not None:
                    self.fault_hook("batch", source, epoch)
                group_stats = group.process_batch(
                    effective, outcome.response_ops, outcome.post_ops
                )
            except ShardKilledError:
                raise  # chaos kill signal: no isolation, the thread dies
            except Exception as exc:  # noqa: BLE001 - isolate the failure
                del self.groups[source]
                outcome.degraded.append((source, str(exc)))
                if telemetry is not None:
                    telemetry.point(
                        "shard.degraded", shard=self.index, epoch=epoch,
                        source=source, error=str(exc),
                    )
                continue
            if observation is not None:
                provenance.record_group(
                    observation.finish(group, group_stats, epoch, self.index)
                )
            for key, value in group_stats.items():
                totals[key] = totals.get(key, 0) + value
            for destination in group.destinations:
                outcome.answers[(source, destination)] = group.answer(destination)
        outcome.stats = totals
        with self._results_cv:
            self._results[epoch] = outcome
            self._results_cv.notify_all()
        return outcome

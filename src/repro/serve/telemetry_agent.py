"""Child-side telemetry agent for process shard workers.

A forked shard child cannot share the parent's :class:`Telemetry` — its
event log, registry and flight rings live in a copied address space the
parent never sees again.  :class:`ChildTelemetryAgent` gives the child a
real telemetry instance of its own and bridges it back over the outcome
queue in primitive form:

* **span-id namespace** — the child tracer's id counter starts at
  ``pid << 24``, so child span ids can never collide with the parent's
  (which count up from 1) or with another child's; the ids stay below
  2**53 and therefore exact through any JSON detour.
* **frames** — every emitted event is buffered (bounded, drop-counted)
  and shipped with counter deltas and gauge levels as one
  ``OUT_TELEMETRY`` frame per command (:func:`repro.serve.ipc.
  encode_telemetry_frame`).  Histograms are *not* shipped: the parent
  re-derives ``span_seconds`` from the merged span events, which keeps
  the wire format flat.
* **backpressure** — the buffer bound means a parent that stops reading
  costs dropped telemetry (counted in ``obs.events.dropped{ring="ipc"}``
  and in the frame's ``dropped`` field), never a stalled batch.
* **crash durability** — after each flush the agent spills its flight
  ring to a per-worker JSONL file via atomic replace;
  :meth:`~repro.serve.executor.ProcessShardWorker.post_mortem` harvests
  the spill after a SIGKILL, so shard-crash bundles carry the child's
  last events even though its address space is gone.

The agent is built inside the child process (never pickled); everything
it needs crosses the spawn boundary as primitives.
"""

from __future__ import annotations

import itertools
import json
import os
import time
from collections import deque
from typing import Dict, List, Optional, Tuple

from repro.obs.events import Event
from repro.obs.telemetry import Telemetry
from repro.serve.ipc import OUT_TELEMETRY, encode_telemetry_frame

#: spill-file meta line key (distinguishes it from event rows)
SPILL_META_KIND = "spill-meta"


class ChildTelemetryAgent:
    """One shard child's telemetry: local instance + frame shipping."""

    def __init__(
        self,
        index: int,
        outcomes,
        spill_path: Optional[str] = None,
        event_capacity: int = 8_192,
        buffer_bound: int = 2_048,
        flight_capacity: int = 512,
    ) -> None:
        self.index = index
        self.outcomes = outcomes
        self.spill_path = spill_path
        self.pid = os.getpid()
        #: child clock domain: shift to wall clock, for the parent to undo
        self.skew = time.time() - time.perf_counter()
        self.telemetry = Telemetry(
            event_capacity=event_capacity, flight_capacity=flight_capacity
        )
        # disjoint span-id namespace: pids are <= 2**22 on Linux, so
        # pid << 24 keeps ids unique across processes and < 2**53 (exact
        # in JSON floats) with 16M spans of headroom per child
        self.telemetry.tracer._ids = itertools.count(self.pid << 24)
        self._buffer_bound = buffer_bound
        self._pending: deque = deque()
        self.dropped = 0
        self._ipc_drop_counter = self.telemetry.registry.counter(
            "obs.events.dropped", {"ring": "ipc"}
        )
        # chain the single EventLog tap: flight ring first (post-mortem
        # completeness), then the bounded frame buffer
        flight_record = self.telemetry.flight.record

        def tap(event: Event) -> None:
            flight_record(event)
            if len(self._pending) >= self._buffer_bound:
                self.dropped += 1
                self._ipc_drop_counter.inc()
            else:
                self._pending.append(event.as_dict())

        self.telemetry.events.tap = tap
        #: cumulative counter values already shipped (frames carry deltas)
        self._shipped: Dict[Tuple[str, Tuple[Tuple[str, str], ...]], float] = {}

    # ------------------------------------------------------------------
    def _metric_rows(self):
        """Counter deltas and gauge levels since the previous frame."""
        counters: List[Tuple[str, Tuple[Tuple[str, str], ...], float]] = []
        gauges: List[Tuple[str, Tuple[Tuple[str, str], ...], float]] = []
        document = self.telemetry.registry.snapshot().as_dict()
        for name, metric in document.items():
            if metric["type"] == "histogram":
                continue  # parent re-derives span_seconds from events
            for series in metric["series"]:
                labels = tuple(
                    (str(k), str(v)) for k, v in series["labels"]
                )
                value = float(series["value"])
                if metric["type"] == "counter":
                    key = (name, labels)
                    delta = value - self._shipped.get(key, 0.0)
                    if delta:
                        counters.append((name, labels, delta))
                        self._shipped[key] = value
                else:
                    gauges.append((name, labels, value))
        return counters, gauges

    def flush(self) -> bool:
        """Ship buffered events + metric deltas; spill the flight ring.

        Returns True when a frame was actually sent.  Never raises into
        the command loop: losing telemetry must not fail an epoch.
        """
        try:
            events = []
            while self._pending:
                events.append(self._pending.popleft())
            counters, gauges = self._metric_rows()
            sent = False
            if events or counters or gauges:
                self.outcomes.put((
                    OUT_TELEMETRY,
                    encode_telemetry_frame(
                        worker=self.index,
                        pid=self.pid,
                        skew=self.skew,
                        events=events,
                        counters=counters,
                        gauges=gauges,
                        dropped=self.dropped,
                    ),
                ))
                sent = True
            self._spill()
            return sent
        except Exception:  # noqa: BLE001 - observing must never break work
            return False

    # ------------------------------------------------------------------
    def _spill(self) -> None:
        """Atomically rewrite the per-worker flight-ring spill file."""
        if self.spill_path is None:
            return
        rows = self.telemetry.flight.snapshot()
        if not rows:
            return
        tmp = f"{self.spill_path}.tmp"
        with open(tmp, "w") as handle:
            handle.write(json.dumps({
                "kind": SPILL_META_KIND,
                "worker": self.index,
                "pid": self.pid,
                "skew": self.skew,
            }, sort_keys=True))
            handle.write("\n")
            for row in rows:
                handle.write(json.dumps(row, sort_keys=True, default=str))
                handle.write("\n")
        os.replace(tmp, self.spill_path)


def read_spill(path: str) -> Optional[Dict[str, object]]:
    """Harvest a spill file written by :meth:`ChildTelemetryAgent._spill`.

    Returns ``{"worker", "pid", "skew", "events"}`` or None when the file
    is absent/empty/torn — a crash can interrupt anything, so a partial
    harvest degrades to what parses, never raises.
    """
    try:
        with open(path) as handle:
            lines = [line.strip() for line in handle if line.strip()]
    except OSError:
        return None
    if not lines:
        return None
    meta: Dict[str, object] = {}
    events: List[Dict[str, object]] = []
    for line in lines:
        try:
            row = json.loads(line)
        except ValueError:
            continue  # torn tail of an interrupted rewrite
        if row.get("kind") == SPILL_META_KIND:
            meta = row
        else:
            events.append(row)
    if not meta and not events:
        return None
    return {
        "worker": meta.get("worker"),
        "pid": meta.get("pid"),
        "skew": meta.get("skew"),
        "events": events,
    }

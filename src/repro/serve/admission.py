"""Admission control: token-bucket rate limiting and load shedding.

A serving layer that accepts every request melts down under the requests
it cannot finish; this module decides — *before* any work is queued —
whether a request is admitted, delayed, or rejected with a typed error:

* :class:`TokenBucket` — classic rate limiter on session registration
  (capacity = burst, steady refill rate; the clock is injectable so tests
  never sleep);
* :class:`ShedPolicy` — what to do when a bounded queue is saturated:
  ``REJECT`` fails fast with :class:`~repro.errors.QueueSaturatedError`,
  ``DELAY`` blocks the caller up to a deadline first (and only then
  rejects), trading latency for acceptance;
* :class:`AdmissionController` — the policy object the harness consults,
  owning the rejection/delay counters surfaced through telemetry
  (``serve_admission_rejections_total{reason=...}``).

Batches that already cleared admission are never shed later: once a batch
is WAL-durable it *must* reach every shard, so backpressure is applied at
the front door only (see docs/serving.md).
"""

from __future__ import annotations

import enum
import threading
import time
from typing import Callable, Dict, Optional

from repro.errors import ControlError, QueueSaturatedError, RateLimitedError


class ShedPolicy(enum.Enum):
    """Load-shedding behaviour when a bounded queue saturates."""

    REJECT = "reject"
    DELAY = "delay"

    def __str__(self) -> str:  # pragma: no cover - cosmetic
        return self.value


class TokenBucket:
    """Token-bucket rate limiter (``capacity`` burst, ``rate`` tokens/s).

    ``rate=0`` makes the bucket non-refilling — after ``capacity`` grants
    every further acquire is rejected, which is how tests exercise the
    rate-limited path deterministically.
    """

    def __init__(
        self,
        rate: float,
        capacity: float,
        clock: Callable[[], float] = time.monotonic,
    ) -> None:
        if rate < 0:
            raise ValueError("rate must be non-negative")
        if capacity <= 0:
            raise ValueError("capacity must be positive")
        self.rate = float(rate)
        self.capacity = float(capacity)
        self.clock = clock
        self._tokens = float(capacity)
        self._stamp = clock()
        self._lock = threading.Lock()

    def _refill(self) -> None:
        now = self.clock()
        elapsed = now - self._stamp
        self._stamp = now
        if elapsed > 0 and self.rate > 0:
            self._tokens = min(self.capacity, self._tokens + elapsed * self.rate)

    def try_acquire(self, tokens: float = 1.0) -> bool:
        """Take ``tokens`` if available; False means rate-limited."""
        with self._lock:
            self._refill()
            if self._tokens >= tokens:
                self._tokens -= tokens
                return True
            return False

    @property
    def available(self) -> float:
        """Tokens currently in the bucket (after refill)."""
        with self._lock:
            self._refill()
            return self._tokens

    def set_rate(self, rate: float) -> None:
        """Retune the refill rate live (thread-safe).

        Accrued tokens up to the change are settled at the *old* rate
        first, so a retune never retroactively rewrites history.  Unlike
        the constructor (where ``rate=0`` builds a deliberately
        non-refilling bucket) a live retune must keep the bucket alive:
        non-positive rates are rejected.
        """
        if rate <= 0:
            raise ControlError("rate must be positive")
        with self._lock:
            self._refill()
            self.rate = float(rate)

    def set_capacity(self, capacity: float) -> None:
        """Retune the burst capacity live (thread-safe).

        Non-positive capacities are rejected; on shrink, in-flight tokens
        are clamped down to the new capacity so a burst can never exceed
        the ceiling that was just imposed.
        """
        if capacity <= 0:
            raise ControlError("capacity must be positive")
        with self._lock:
            self._refill()
            self.capacity = float(capacity)
            self._tokens = min(self._tokens, self.capacity)


class AdmissionController:
    """Front-door gate for registrations and batch ingest.

    One controller guards one harness.  It holds the token bucket for
    registrations, applies the shed policy against queue-depth probes,
    and counts every outcome so operators can alarm on rejections
    instead of discovering overload from client timeouts.
    """

    def __init__(
        self,
        policy: ShedPolicy = ShedPolicy.REJECT,
        queue_bound: int = 64,
        registration_rate: float = 64.0,
        registration_burst: float = 32.0,
        delay_timeout: float = 2.0,
        clock: Callable[[], float] = time.monotonic,
    ) -> None:
        if queue_bound <= 0:
            raise ValueError("queue_bound must be positive")
        if delay_timeout <= 0:
            raise ValueError("delay_timeout must be positive")
        self.policy = policy if isinstance(policy, ShedPolicy) else ShedPolicy(policy)
        self.queue_bound = queue_bound
        self.delay_timeout = delay_timeout
        self.clock = clock
        self.bucket = TokenBucket(registration_rate, registration_burst, clock=clock)
        self._lock = threading.Lock()
        self.rejections: Dict[str, int] = {}
        self.delays = 0
        self.admitted_registrations = 0
        self.admitted_batches = 0

    # ------------------------------------------------------------------
    def _count_rejection(self, reason: str) -> None:
        with self._lock:
            self.rejections[reason] = self.rejections.get(reason, 0) + 1

    @property
    def total_rejections(self) -> int:
        with self._lock:
            return sum(self.rejections.values())

    def rejection_counts(self) -> Dict[str, int]:
        """Cumulative rejections keyed by machine-stable reason tag."""
        with self._lock:
            return dict(self.rejections)

    # ------------------------------------------------------------------
    def admit_registration(self, depth: int) -> None:
        """Gate one session registration against rate and queue depth.

        ``depth`` is the owning shard's current inbox depth.  Raises
        :class:`RateLimitedError` or :class:`QueueSaturatedError`; returns
        normally when admitted.
        """
        if not self.bucket.try_acquire():
            self._count_rejection(RateLimitedError.reason)
            raise RateLimitedError(
                "registration rate limit exceeded "
                f"(burst {self.bucket.capacity:g}, rate {self.bucket.rate:g}/s)"
            )
        if depth >= self.queue_bound:
            self._count_rejection(QueueSaturatedError.reason)
            raise QueueSaturatedError(
                f"shard inbox saturated at {depth} >= bound {self.queue_bound}"
            )
        with self._lock:
            self.admitted_registrations += 1

    def admit_batch(self, depth_probe: Callable[[], int]) -> None:
        """Gate one update batch against the deepest shard inbox.

        ``depth_probe`` returns the current maximum shard inbox depth.
        Under ``REJECT`` a saturated probe fails immediately; under
        ``DELAY`` the caller is parked (polling) until the depth drops or
        ``delay_timeout`` elapses — only then is the batch rejected.
        """
        depth = depth_probe()
        if depth < self.queue_bound:
            with self._lock:
                self.admitted_batches += 1
            return
        if self.policy is ShedPolicy.REJECT:
            self._count_rejection(QueueSaturatedError.reason)
            raise QueueSaturatedError(
                f"ingest queue saturated at {depth} >= bound {self.queue_bound}"
            )
        # DELAY: park the producer, re-probing until the deadline
        with self._lock:
            self.delays += 1
        deadline = self.clock() + self.delay_timeout
        while self.clock() < deadline:
            time.sleep(0.001)
            if depth_probe() < self.queue_bound:
                with self._lock:
                    self.admitted_batches += 1
                return
        self._count_rejection(QueueSaturatedError.reason)
        raise QueueSaturatedError(
            f"ingest queue still saturated after {self.delay_timeout:g}s delay"
        )

    def retune(
        self,
        registration_rate: Optional[float] = None,
        registration_burst: Optional[float] = None,
        queue_bound: Optional[int] = None,
    ) -> None:
        """Apply new admission knob values live (the controller surface).

        Each knob is validated before anything changes, so a bad retune
        leaves the controller exactly as it was.  ``queue_bound`` only
        moves the *admission* threshold — the physical shard inbox bound
        is fixed at construction, so callers must keep the admission
        bound at or below it.
        """
        if registration_rate is not None and registration_rate <= 0:
            raise ControlError("registration_rate must be positive")
        if registration_burst is not None and registration_burst <= 0:
            raise ControlError("registration_burst must be positive")
        if queue_bound is not None and queue_bound <= 0:
            raise ControlError("queue_bound must be positive")
        if registration_rate is not None:
            self.bucket.set_rate(registration_rate)
        if registration_burst is not None:
            self.bucket.set_capacity(registration_burst)
        if queue_bound is not None:
            with self._lock:
                self.queue_bound = queue_bound

    def stats(self) -> Dict[str, object]:
        """Point-in-time summary for ``ServeHarness.stats()`` and the CLI."""
        with self._lock:
            return {
                "policy": self.policy.value,
                "queue_bound": self.queue_bound,
                "registration_rate": self.bucket.rate,
                "registration_burst": self.bucket.capacity,
                "admitted_registrations": self.admitted_registrations,
                "admitted_batches": self.admitted_batches,
                "delays": self.delays,
                "rejections": dict(self.rejections),
            }

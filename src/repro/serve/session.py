"""Standing-query sessions and the session registry.

A *session* is a registered pairwise query that stays live against the
evolving topology (Pacaci et al.'s persistent-query abstraction): clients
register ``Q(s -> d)`` once and then receive a fresh answer after every
committed update batch until they deregister.  Each session carries its
lifecycle state, a bounded subscription queue of answer events, and an
optional callback.

Lifecycle::

    PENDING ──▶ WARMING ──▶ LIVE ──▶ CLOSED
       ▲           │           │
       │           └──▶ DEGRADED ◀──┘   (shard crash; see docs/serving.md)
       └──────────────────┘  (supervisor resurrection requeue,
                              docs/self_healing.md)

``PENDING`` means the registration is queued for the owning shard;
``WARMING`` means the shard is bootstrapping the source group from the
current graph (a full computation for a brand-new source, one key-path
rebuild for a known one); ``LIVE`` sessions get an answer per batch;
``DEGRADED`` sessions stopped receiving answers after a shard-side failure
but never block other sessions.  All transitions are thread-safe — the
shard worker flips states while clients poll or :meth:`QuerySession.wait_live`.
"""

from __future__ import annotations

import enum
import itertools
import threading
from collections import deque
from dataclasses import dataclass
from typing import Callable, Deque, Dict, List, Optional

from repro.errors import (
    DuplicateQueryError,
    SessionNotFoundError,
    SessionStateError,
)
from repro.query import PairwiseQuery


class SessionState(enum.Enum):
    """Lifecycle state of a standing query session."""

    PENDING = "pending"
    WARMING = "warming"
    LIVE = "live"
    DEGRADED = "degraded"
    CLOSED = "closed"

    def __str__(self) -> str:  # pragma: no cover - cosmetic
        return self.value


#: transitions a session may take (anything else raises SessionStateError)
#: DEGRADED -> PENDING is the supervisor's resurrection requeue: a rescued
#: session re-enters the normal pending -> warming -> live warm-up on the
#: (possibly respawned) owning shard — see docs/self_healing.md.
#: LIVE/WARMING -> PENDING is the adaptive controller's migration requeue:
#: a shard rescale re-homes every standing query onto its new owning shard
#: through the same warm-up path — see docs/adaptive_control.md
_ALLOWED = {
    SessionState.PENDING: {SessionState.WARMING, SessionState.LIVE,
                           SessionState.DEGRADED, SessionState.CLOSED},
    SessionState.WARMING: {SessionState.PENDING, SessionState.LIVE,
                           SessionState.DEGRADED, SessionState.CLOSED},
    SessionState.LIVE: {SessionState.PENDING, SessionState.DEGRADED,
                        SessionState.CLOSED},
    SessionState.DEGRADED: {SessionState.PENDING, SessionState.CLOSED},
    SessionState.CLOSED: set(),
}


@dataclass(frozen=True)
class AnswerEvent:
    """One per-batch answer delivered to a session's subscription queue.

    ``trace_id`` links the answer back to the causal tree of the batch
    commit that produced it (None when telemetry is disabled);
    ``epoch`` is the engine epoch the answer reflects.
    """

    snapshot_id: int
    answer: float
    latency_seconds: float
    trace_id: Optional[str] = None
    epoch: int = 0


class QuerySession:
    """One standing pairwise query with lifecycle and subscription state.

    Answer events are pushed into a bounded deque (oldest dropped first,
    with a drop counter) so a slow consumer can never exhaust server
    memory; ``callback`` — when given — is invoked synchronously with each
    event *in addition to* the queue.
    """

    def __init__(
        self,
        session_id: str,
        query: PairwiseQuery,
        subscription_capacity: int = 256,
        callback: Optional[Callable[["QuerySession", AnswerEvent], None]] = None,
    ) -> None:
        if subscription_capacity <= 0:
            raise ValueError("subscription_capacity must be positive")
        self.id = session_id
        self.query = query
        self.callback = callback
        self._state = SessionState.PENDING
        self._lock = threading.Lock()
        self._live = threading.Event()
        self._events: Deque[AnswerEvent] = deque(maxlen=subscription_capacity)
        self.dropped_events = 0
        self.answers_delivered = 0
        self.last_answer: Optional[float] = None
        self.registered_snapshot: Optional[int] = None
        #: error text of the failure that degraded this session (if any)
        self.degraded_reason: Optional[str] = None
        #: times this session was requeued back to PENDING — supervisor
        #: resurrection after a failure, or controller migration on rescale
        self.resurrections = 0

    # ------------------------------------------------------------------
    # lifecycle
    # ------------------------------------------------------------------
    @property
    def state(self) -> SessionState:
        return self._state

    def transition(self, target: SessionState, reason: Optional[str] = None) -> None:
        """Move to ``target`` (thread-safe); invalid moves raise typed errors."""
        with self._lock:
            if target not in _ALLOWED[self._state]:
                raise SessionStateError(
                    f"session {self.id}: cannot move {self._state.value} "
                    f"-> {target.value}"
                )
            self._state = target
            if target is SessionState.DEGRADED:
                self.degraded_reason = reason
            elif target is SessionState.PENDING:
                # resurrection requeue: the session warms up again, so
                # wait_live() must block again and the old failure clears
                self.degraded_reason = None
                self.resurrections += 1
        if target is SessionState.LIVE:
            self._live.set()
        elif target in (SessionState.DEGRADED, SessionState.CLOSED):
            # unblock any wait_live() caller; they re-check the state
            self._live.set()
        elif target is SessionState.PENDING:
            self._live.clear()

    def wait_live(self, timeout: Optional[float] = None) -> bool:
        """Block until the session left the warm-up path; True iff LIVE."""
        self._live.wait(timeout)
        return self._state is SessionState.LIVE

    @property
    def is_active(self) -> bool:
        """Does this session still expect per-batch answers?"""
        return self._state in (
            SessionState.PENDING, SessionState.WARMING, SessionState.LIVE
        )

    # ------------------------------------------------------------------
    # subscription
    # ------------------------------------------------------------------
    def push_answer(self, event: AnswerEvent) -> None:
        """Deliver one answer event (bounded queue + optional callback)."""
        with self._lock:
            if len(self._events) == self._events.maxlen:
                self.dropped_events += 1
            self._events.append(event)
            self.answers_delivered += 1
            self.last_answer = event.answer
        if self.callback is not None:
            self.callback(self, event)

    def drain(self) -> List[AnswerEvent]:
        """Pop and return every queued answer event (oldest first)."""
        with self._lock:
            events = list(self._events)
            self._events.clear()
        return events

    def __repr__(self) -> str:
        return (
            f"QuerySession({self.id}, {self.query}, state={self._state.value}, "
            f"answers={self.answers_delivered})"
        )


class SessionRegistry:
    """Thread-safe store of sessions, keyed by id and by query.

    The registry enforces the one-session-per-query invariant: registering
    an already-live query raises :class:`~repro.errors.DuplicateQueryError`
    unless the registry was built with ``dedupe=True``, in which case the
    existing session is returned (idempotent registration).
    """

    def __init__(self, dedupe: bool = False,
                 subscription_capacity: int = 256) -> None:
        self.dedupe = dedupe
        self.subscription_capacity = subscription_capacity
        self._lock = threading.Lock()
        self._by_id: Dict[str, QuerySession] = {}
        self._by_query: Dict[PairwiseQuery, QuerySession] = {}
        self._ids = itertools.count(1)

    def __len__(self) -> int:
        return len(self._by_id)

    def __iter__(self):
        return iter(list(self._by_id.values()))

    # ------------------------------------------------------------------
    def register(
        self,
        query: PairwiseQuery,
        callback: Optional[Callable[[QuerySession, AnswerEvent], None]] = None,
    ) -> QuerySession:
        """Create (or, with dedupe, return) the session owning ``query``."""
        with self._lock:
            existing = self._by_query.get(query)
            if existing is not None and existing.is_active:
                if self.dedupe:
                    return existing
                raise DuplicateQueryError(query)
            session = QuerySession(
                f"s{next(self._ids):04d}",
                query,
                subscription_capacity=self.subscription_capacity,
                callback=callback,
            )
            self._by_id[session.id] = session
            self._by_query[query] = session
            return session

    def get(self, session_id: str) -> QuerySession:
        """Look up a session by id; unknown ids raise a typed error."""
        session = self._by_id.get(session_id)
        if session is None:
            raise SessionNotFoundError(session_id)
        return session

    def find(self, query: PairwiseQuery) -> Optional[QuerySession]:
        """The active session owning ``query``, if any."""
        session = self._by_query.get(query)
        if session is not None and session.is_active:
            return session
        return None

    def close(self, session_id: str) -> QuerySession:
        """Transition a session to CLOSED and release its query key."""
        with self._lock:
            session = self._by_id.get(session_id)
            if session is None:
                raise SessionNotFoundError(session_id)
            if self._by_query.get(session.query) is session:
                del self._by_query[session.query]
        if session.state is not SessionState.CLOSED:
            session.transition(SessionState.CLOSED)
        return session

    # ------------------------------------------------------------------
    def active_sessions(self) -> List[QuerySession]:
        """Sessions still expecting answers (pending/warming/live)."""
        with self._lock:
            return [s for s in self._by_id.values() if s.is_active]

    def by_state(self) -> Dict[str, int]:
        """Session counts keyed by lifecycle state name."""
        counts = {state.value: 0 for state in SessionState}
        with self._lock:
            for session in self._by_id.values():
                counts[session.state.value] += 1
        return counts

"""Health primitives for the self-healing serve layer.

Three small, independently testable pieces that
:class:`repro.serve.supervision.Supervisor` composes (see
``docs/self_healing.md``):

* :class:`Heartbeat` — a monotonically increasing beat counter the worker
  thread stamps around every inbox command, with an injectable clock so
  hang detection is testable without sleeping;
* :class:`HealthMonitor` — classifies one worker as ``HEALTHY`` /
  ``HUNG`` / ``CRASHED`` / ``STOPPED`` from its thread liveness and
  heartbeat freshness;
* :class:`CircuitBreaker` — the classic closed → open → half-open state
  machine (per *source*, not per shard: a flapping source group must not
  be resurrected in a tight loop, and while its circuit is open, reads
  are served from the result cache under a bounded-staleness contract).

Everything takes an injectable ``clock`` (like
:class:`repro.serve.admission.TokenBucket`) so the chaos suite can drive
cooldowns by stepping a manual clock one epoch at a time instead of
sleeping.
"""

from __future__ import annotations

import enum
import threading
import time
from typing import Callable, Dict, Optional


class ShardHealth(enum.Enum):
    """Probe verdict for one shard worker."""

    HEALTHY = "healthy"
    #: worker alive but stuck inside one command past the hang timeout
    HUNG = "hung"
    #: worker died on its own (exception, abrupt nonzero exit)
    CRASHED = "crashed"
    #: worker killed from outside (SIGKILL on the process backend, an
    #: injected kill on threads) without being asked to stop
    KILLED = "killed"
    #: never started, or deliberately stopped/retired
    STOPPED = "stopped"

    def __str__(self) -> str:  # pragma: no cover - cosmetic
        return self.value


class Heartbeat:
    """Liveness stamps written by a worker thread, read by the monitor.

    The worker calls :meth:`begin` when it dequeues a command and
    :meth:`end` when the command finishes; the monitor reads
    ``busy_seconds`` to tell "idle" (no command in flight — however long
    ago the last beat was) from "stuck" (one command in flight for longer
    than the hang timeout).  A lock keeps the (stamp, busy) pair
    consistent across threads.
    """

    def __init__(self, clock: Callable[[], float] = time.monotonic) -> None:
        self.clock = clock
        self.beats = 0
        self.last_beat = clock()
        self._busy_since: Optional[float] = None
        self._busy_kind: Optional[str] = None
        self._lock = threading.Lock()

    def begin(self, kind: str) -> None:
        """Stamp the start of one command (worker thread)."""
        with self._lock:
            self.beats += 1
            self.last_beat = self.clock()
            self._busy_since = self.last_beat
            self._busy_kind = kind

    def end(self) -> None:
        """Stamp the end of the in-flight command (worker thread)."""
        with self._lock:
            self.beats += 1
            self.last_beat = self.clock()
            self._busy_since = None
            self._busy_kind = None

    @property
    def busy_seconds(self) -> float:
        """Seconds the current command has been running (0.0 when idle)."""
        with self._lock:
            if self._busy_since is None:
                return 0.0
            return max(0.0, self.clock() - self._busy_since)

    @property
    def busy_kind(self) -> Optional[str]:
        """Kind of the in-flight command, if any."""
        with self._lock:
            return self._busy_kind


class HealthMonitor:
    """Classify shard workers from thread state and heartbeat freshness.

    ``hang_timeout`` is how long one inbox command may run before the
    worker is declared ``HUNG`` — it should comfortably exceed the cost
    of a full source-group bootstrap but sit below the engine's epoch
    deadline, so a hang is attributed before the barrier gives up.
    """

    def __init__(
        self,
        hang_timeout: float = 10.0,
        clock: Callable[[], float] = time.monotonic,
    ) -> None:
        if hang_timeout <= 0:
            raise ValueError("hang_timeout must be positive")
        self.hang_timeout = hang_timeout
        self.clock = clock

    def probe(self, worker) -> ShardHealth:
        """Health verdict for one shard worker (either backend).

        Dead workers are refined through the worker's own
        ``failure_mode()`` sentinel when it offers one — the process
        backend reads the child's exit code there, distinguishing a
        SIGKILLed worker (``KILLED``) from one that crashed on its own.
        ``getattr`` keeps the probe working against minimal worker
        doubles that only expose the liveness surface.
        """
        if not worker.started:
            return ShardHealth.STOPPED
        if not worker.alive:
            if worker.stop_requested:
                return ShardHealth.STOPPED
            mode = getattr(worker, "failure_mode", None)
            if callable(mode) and mode() == "killed":
                return ShardHealth.KILLED
            return ShardHealth.CRASHED
        if worker.heartbeat.busy_seconds > self.hang_timeout:
            return ShardHealth.HUNG
        return ShardHealth.HEALTHY

    def probe_all(self, workers) -> Dict[int, ShardHealth]:
        """``shard index -> verdict`` over a worker collection."""
        return {worker.index: self.probe(worker) for worker in workers}


class BreakerState(enum.Enum):
    """Circuit-breaker states (standard semantics)."""

    CLOSED = "closed"
    OPEN = "open"
    HALF_OPEN = "half-open"

    def __str__(self) -> str:  # pragma: no cover - cosmetic
        return self.value


class CircuitBreaker:
    """Closed → open → half-open breaker with an injectable clock.

    * ``CLOSED`` — operations allowed; ``failure_threshold`` *consecutive*
      failures trip it ``OPEN`` (a success resets the streak);
    * ``OPEN`` — everything refused until ``cooldown`` seconds pass, then
      the breaker offers ``HALF_OPEN``;
    * ``HALF_OPEN`` — exactly one trial is allowed in flight; its success
      closes the breaker (streak reset), its failure re-opens it and the
      cooldown restarts.

    The supervisor keeps one breaker per *source*: resurrection of a
    flapping source group is the guarded operation, so a group that dies
    every epoch costs ``failure_threshold`` rebuilds and then waits out
    the cooldown instead of melting the ingest thread with rebuild storms.
    """

    def __init__(
        self,
        failure_threshold: int = 3,
        cooldown: float = 30.0,
        clock: Callable[[], float] = time.monotonic,
    ) -> None:
        if failure_threshold <= 0:
            raise ValueError("failure_threshold must be positive")
        if cooldown <= 0:
            raise ValueError("cooldown must be positive")
        self.failure_threshold = failure_threshold
        self.cooldown = cooldown
        self.clock = clock
        self._state = BreakerState.CLOSED
        self._consecutive_failures = 0
        self._opened_at: Optional[float] = None
        self._trial_inflight = False
        # cumulative observability counters
        self.failures = 0
        self.successes = 0
        self.opens = 0
        self.refusals = 0

    # ------------------------------------------------------------------
    @property
    def state(self) -> BreakerState:
        """Current state; lazily promotes OPEN to HALF_OPEN after cooldown."""
        if (
            self._state is BreakerState.OPEN
            and self._opened_at is not None
            and self.clock() - self._opened_at >= self.cooldown
        ):
            self._state = BreakerState.HALF_OPEN
            self._trial_inflight = False
        return self._state

    def allow(self) -> bool:
        """May one guarded operation start now?

        ``HALF_OPEN`` grants exactly one trial: the first caller gets
        ``True``, everyone else ``False`` until the trial is resolved via
        :meth:`record_success` / :meth:`record_failure`.
        """
        state = self.state
        if state is BreakerState.CLOSED:
            return True
        if state is BreakerState.HALF_OPEN and not self._trial_inflight:
            self._trial_inflight = True
            return True
        self.refusals += 1
        return False

    def record_success(self) -> None:
        """The guarded operation succeeded; close and reset the streak."""
        self.successes += 1
        self._consecutive_failures = 0
        self._state = BreakerState.CLOSED
        self._opened_at = None
        self._trial_inflight = False

    def record_failure(self) -> None:
        """The guarded operation failed; may trip or re-open the breaker."""
        self.failures += 1
        self._consecutive_failures += 1
        if self._state is BreakerState.HALF_OPEN:
            # the trial failed: straight back to OPEN, cooldown restarts
            self._trip()
        elif (
            self._state is BreakerState.CLOSED
            and self._consecutive_failures >= self.failure_threshold
        ):
            self._trip()
        elif self._state is BreakerState.OPEN:
            self._opened_at = self.clock()  # failures while open re-stamp

    def _trip(self) -> None:
        self._state = BreakerState.OPEN
        self._opened_at = self.clock()
        self._trial_inflight = False
        self.opens += 1

    def as_dict(self) -> Dict[str, object]:
        """Point-in-time summary (stats/telemetry surface)."""
        return {
            "state": self.state.value,
            "consecutive_failures": self._consecutive_failures,
            "failures": self.failures,
            "successes": self.successes,
            "opens": self.opens,
            "refusals": self.refusals,
        }

    def __repr__(self) -> str:
        return (
            f"CircuitBreaker(state={self.state.value}, "
            f"streak={self._consecutive_failures}/{self.failure_threshold})"
        )

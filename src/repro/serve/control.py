"""Adaptive runtime control: SLO-guarded self-tuning of the serve layer.

Every serve-layer knob was static until this module: shard count,
admission token bucket, result-cache capacity, and the supervisor's
``max_staleness`` bound were all fixed at :meth:`ServeHarness.open` no
matter what the workload did.  :class:`RuntimeController` closes the
observe → diagnose → remediate loop (RisGraph meets its per-update SLO by
exactly this kind of runtime trading of admission against load; see
PAPERS.md): it runs after every committed epoch, consumes a
:class:`~repro.obs.metrics.MetricsRegistry` snapshot diff (queue depths,
admission rejections, cache effectiveness, breaker states, answer p99,
served staleness), diagnoses one :class:`Condition`, and applies bounded
remediations live.

Safety properties, in order of importance:

* **SLO-gated** — remediations exist to meet an explicit
  :class:`SLOPolicy` (answer p99, staleness bound, shed rate), not to
  chase throughput;
* **clamped** — every knob move is clamped to :class:`ControlLimits`
  floors/ceilings, so a bad diagnosis degrades gracefully instead of
  cascading;
* **hysteresis + cooldown** — scale-ups need the queue above the high
  watermark (or actual shedding), scale-downs need ``idle_epochs``
  consecutive quiet epochs, and each knob obeys a per-knob cooldown, so
  the controller cannot flap (load oscillating inside the band produces
  zero decisions — a regression test);
* **auditable** — every decision is appended to a bounded audit log and
  emitted as a ``controller.decision`` trace point inside the epoch's
  causal tree, so ``trace``/``control-log`` answer *why capacity
  changed*;
* **killable** — :meth:`RuntimeController.freeze` reverts every knob to
  the static configuration captured at attach time and stops all further
  decisions until :meth:`RuntimeController.thaw`.

The decision core (:class:`DecisionEngine`) is a pure function of the
signal stream plus its own counters — no wall clock, no randomness — so
identical seeded metric streams produce identical decision sequences
(property-tested in ``tests/test_serve_control.py``).

See docs/adaptive_control.md for the decision table and audit format.
"""

from __future__ import annotations

import dataclasses
import enum
import json
from collections import deque
from dataclasses import dataclass, field
from typing import Deque, Dict, List, Optional, Sequence, Tuple

from repro.errors import ControlError
from repro.obs.bridge import record_control_surface, record_controller


class Condition(enum.Enum):
    """Diagnosed state of the serving system for one epoch."""

    HEALTHY = "healthy"
    OVERLOAD = "overload"
    HOT_SKEW = "hot-skew"
    UNDER_PROVISIONED = "under-provisioned"
    IDLE = "idle"
    DEGRADED_READS = "degraded-read-pressure"
    FROZEN = "frozen"

    def __str__(self) -> str:  # pragma: no cover - cosmetic
        return self.value


@dataclass(frozen=True)
class SLOPolicy:
    """The service-level objectives the controller is allowed to chase.

    ``answer_p99`` bounds standing-answer latency in seconds;
    ``staleness_bound`` bounds the age (in committed epochs) of any
    degraded read the layer serves; ``shed_rate`` bounds the fraction of
    admission attempts that may be rejected.
    """

    answer_p99: float = 1.0
    staleness_bound: int = 2
    shed_rate: float = 0.1

    def validate(self) -> None:
        """Raise :class:`~repro.errors.ControlError` on a bad policy."""
        if self.answer_p99 <= 0:
            raise ControlError("answer_p99 must be positive")
        if self.staleness_bound < 0:
            raise ControlError("staleness_bound must be non-negative")
        if not 0.0 <= self.shed_rate <= 1.0:
            raise ControlError("shed_rate must be within [0, 1]")

    def as_dict(self) -> Dict[str, float]:
        """Plain-JSON form for reports and audit records."""
        return {
            "answer_p99": self.answer_p99,
            "staleness_bound": self.staleness_bound,
            "shed_rate": self.shed_rate,
        }


@dataclass(frozen=True)
class SLOVerdict:
    """Measured SLO outcomes of one run, graded against a policy."""

    policy: SLOPolicy
    answer_p99: float
    staleness_max: int
    shed_rate: float
    violations: Tuple[str, ...]

    @property
    def met(self) -> bool:
        """True when every objective held."""
        return not self.violations

    @classmethod
    def grade(
        cls,
        policy: SLOPolicy,
        latencies: Sequence[float],
        staleness_max: int,
        shed_rate: float,
    ) -> "SLOVerdict":
        """Grade measured outcomes against ``policy``."""
        p99 = _p99(latencies)
        violations = []
        if p99 > policy.answer_p99:
            violations.append(
                f"answer p99 {p99:.4f}s > bound {policy.answer_p99:g}s"
            )
        if staleness_max > policy.staleness_bound:
            violations.append(
                f"served staleness {staleness_max} epochs "
                f"> bound {policy.staleness_bound}"
            )
        if shed_rate > policy.shed_rate:
            violations.append(
                f"shed rate {shed_rate:.3f} > bound {policy.shed_rate:g}"
            )
        return cls(
            policy=policy,
            answer_p99=p99,
            staleness_max=staleness_max,
            shed_rate=shed_rate,
            violations=tuple(violations),
        )

    def as_dict(self) -> Dict[str, object]:
        """Plain-JSON form for chaos reports and CI artifacts."""
        return {
            "policy": self.policy.as_dict(),
            "answer_p99": self.answer_p99,
            "staleness_max": self.staleness_max,
            "shed_rate": self.shed_rate,
            "violations": list(self.violations),
            "met": self.met,
        }


def _p99(latencies: Sequence[float]) -> float:
    """Nearest-rank p99 of a latency sample (0.0 when empty)."""
    if not latencies:
        return 0.0
    ordered = sorted(latencies)
    return ordered[min(len(ordered) - 1, int(0.99 * (len(ordered) - 1)))]


@dataclass(frozen=True)
class ControlLimits:
    """Hard floors and ceilings no remediation may cross."""

    min_shards: int = 1
    max_shards: int = 8
    min_rate: float = 0.5
    max_rate: float = 1024.0
    min_burst: float = 1.0
    max_burst: float = 4096.0
    min_cache: int = 8
    max_cache: int = 4096
    min_staleness: int = 0
    max_staleness: int = 64

    def validate(self) -> None:
        """Raise :class:`~repro.errors.ControlError` on inverted bounds."""
        pairs = (
            ("shards", self.min_shards, self.max_shards),
            ("rate", self.min_rate, self.max_rate),
            ("burst", self.min_burst, self.max_burst),
            ("cache", self.min_cache, self.max_cache),
            ("staleness", self.min_staleness, self.max_staleness),
        )
        for name, lo, hi in pairs:
            if lo > hi:
                raise ControlError(f"min_{name} {lo} exceeds max_{name} {hi}")
        if self.min_shards < 1:
            raise ControlError("min_shards must be at least 1")
        if self.min_rate <= 0 or self.min_burst <= 0 or self.min_cache <= 0:
            raise ControlError("rate/burst/cache floors must be positive")
        if self.min_staleness < 0:
            raise ControlError("min_staleness must be non-negative")

    #: knob name -> (floor attribute, ceiling attribute)
    _BOUNDS = {
        "shards": ("min_shards", "max_shards"),
        "admission_rate": ("min_rate", "max_rate"),
        "admission_burst": ("min_burst", "max_burst"),
        "cache_capacity": ("min_cache", "max_cache"),
        "max_staleness": ("min_staleness", "max_staleness"),
    }

    def clamp(self, knob: str, value: float) -> Tuple[float, bool]:
        """``(clamped value, True when the raw value crossed a bound)``."""
        lo_attr, hi_attr = self._BOUNDS[knob]
        lo, hi = getattr(self, lo_attr), getattr(self, hi_attr)
        clamped = min(max(value, lo), hi)
        return clamped, clamped != value


@dataclass(frozen=True)
class ControlSignals:
    """One epoch's observation of the serving system (the engine's input).

    Deltas (``*_delta``) cover the interval since the previous controller
    review; everything else is the current level.  Signals are built
    either from a :class:`~repro.obs.metrics.MetricsRegistry` snapshot
    pair (:meth:`from_snapshot`, the telemetry path) or directly from
    component stats — both yield identical values for identical harness
    state, which is unit-tested.
    """

    epoch: int
    num_shards: int
    queue_bound: int
    depth_max: int
    groups_max: int
    groups_total: int
    rejections_delta: int
    saturated_delta: int
    admitted_delta: int
    cache_hit_rate: float
    cache_lookups_delta: int
    cache_evictions_delta: int
    breakers_open: int
    degraded_sessions: int
    answer_p99: float
    staleness_served: int
    admission_rate: float
    admission_burst: float
    cache_capacity: int
    max_staleness: int

    @property
    def depth_ratio(self) -> float:
        """Deepest shard inbox as a fraction of the admission bound."""
        return self.depth_max / self.queue_bound if self.queue_bound else 0.0

    def as_dict(self) -> Dict[str, object]:
        """Plain-JSON form (audit records, tests)."""
        return dataclasses.asdict(self)

    @classmethod
    def from_snapshot(
        cls,
        current,
        previous=None,
        epoch: int = 0,
    ) -> "ControlSignals":
        """Build signals from a registry snapshot pair (telemetry path).

        ``current`` and ``previous`` are
        :class:`~repro.obs.metrics.MetricsSnapshot` instances taken at
        consecutive controller reviews; cumulative gauges are differenced
        by level.  Requires the ``serve_control_*`` surface gauges
        recorded by :func:`repro.obs.bridge.record_control_surface`.
        """

        def level(name: str, default: float = 0.0, **labels) -> float:
            value = current.value(name, **labels)
            return default if value is None else float(value)

        def prior(name: str, default: float = 0.0, **labels) -> float:
            if previous is None:
                return default
            value = previous.value(name, **labels)
            return default if value is None else float(value)

        def labelled(snapshot, name: str, label: str) -> Dict[int, float]:
            metric = snapshot.as_dict().get(name)
            if metric is None:
                return {}
            out: Dict[int, float] = {}
            for series in metric["series"]:
                labels = dict(tuple(pair) for pair in series["labels"])
                if label in labels:
                    out[int(labels[label])] = float(series["value"])
            return out

        num_shards = max(1, int(level("serve_control_shards", 1.0)))
        # gauges for retired shards linger in the registry after a
        # rescale; only indices of the live pool are real occupancy
        depths = [
            depth for index, depth
            in labelled(current, "serve_queue_depth", "shard").items()
            if index < num_shards
        ]
        groups = [
            count for index, count
            in labelled(current, "serve_shard_groups", "shard").items()
            if index < num_shards
        ]
        breaker_codes = labelled(current, "serve_breaker_state", "source")
        rejections_now = current.total("serve_admission_rejections")
        rejections_before = (
            previous.total("serve_admission_rejections")
            if previous is not None else 0.0
        )
        admitted_now = (
            level("serve_admitted_registrations")
            + level("serve_admitted_batches")
        )
        admitted_before = (
            prior("serve_admitted_registrations")
            + prior("serve_admitted_batches")
        )
        return cls(
            epoch=epoch,
            num_shards=num_shards,
            queue_bound=int(level("serve_queue_bound", 1.0)),
            depth_max=int(max(depths, default=0)),
            groups_max=int(max(groups, default=0)),
            groups_total=int(sum(groups)),
            rejections_delta=int(rejections_now - rejections_before),
            saturated_delta=int(
                level("serve_admission_rejections", reason="queue-saturated")
                - prior("serve_admission_rejections", reason="queue-saturated")
            ),
            admitted_delta=int(admitted_now - admitted_before),
            cache_hit_rate=level("serve_cache_hit_rate"),
            cache_lookups_delta=int(
                level("serve_cache_lookups") - prior("serve_cache_lookups")
            ),
            cache_evictions_delta=int(
                level("serve_cache_evicted_families")
                - prior("serve_cache_evicted_families")
            ),
            breakers_open=sum(1 for code in breaker_codes.values() if code),
            degraded_sessions=int(level("serve_sessions", state="degraded")),
            answer_p99=level("serve_control_answer_p99"),
            staleness_served=int(level("serve_control_staleness_served")),
            admission_rate=level("serve_control_admission_rate"),
            admission_burst=level("serve_control_admission_burst"),
            cache_capacity=int(level("serve_control_cache_capacity", 1.0)),
            max_staleness=int(level("serve_control_max_staleness")),
        )


@dataclass(frozen=True)
class ControllerConfig:
    """Everything the controller needs besides the harness itself."""

    policy: SLOPolicy = field(default_factory=SLOPolicy)
    limits: ControlLimits = field(default_factory=ControlLimits)
    #: minimum epochs between consecutive changes of the same knob
    cooldown_epochs: int = 1
    #: consecutive quiet epochs required before reclaiming capacity
    idle_epochs: int = 3
    #: queue-depth ratio above which the pool is under-provisioned
    high_water: float = 0.75
    #: queue-depth ratio below which an epoch counts as quiet
    low_water: float = 0.25
    #: groups_max / mean-groups ratio that counts as hot-source skew
    skew_factor: float = 1.5
    #: minimum groups on the hottest shard before skew is believed
    skew_min_groups: int = 4
    #: multiplier applied to the token bucket when raising admission
    admission_growth: float = 8.0
    #: multiplier applied to the cache capacity under miss pressure
    cache_growth: float = 2.0
    #: hit rate below which cache evictions trigger a capacity raise
    cache_hit_target: float = 0.5
    #: bounded length of the in-memory decision audit log
    audit_capacity: int = 1024

    def validate(self) -> None:
        """Raise :class:`~repro.errors.ControlError` on a bad config."""
        self.policy.validate()
        self.limits.validate()
        if self.cooldown_epochs < 1:
            raise ControlError("cooldown_epochs must be at least 1")
        if self.idle_epochs < 1:
            raise ControlError("idle_epochs must be at least 1")
        if not 0.0 <= self.low_water < self.high_water <= 1.0:
            raise ControlError(
                "watermarks must satisfy 0 <= low_water < high_water <= 1"
            )
        if self.skew_factor <= 1.0:
            raise ControlError("skew_factor must exceed 1")
        if self.admission_growth <= 1.0 or self.cache_growth <= 1.0:
            raise ControlError("growth factors must exceed 1")
        if not 0.0 <= self.cache_hit_target <= 1.0:
            raise ControlError("cache_hit_target must be within [0, 1]")
        if self.audit_capacity <= 0:
            raise ControlError("audit_capacity must be positive")


@dataclass(frozen=True)
class ControlDecision:
    """One applied knob change, as recorded in the audit log."""

    epoch: int
    condition: str
    knob: str
    old: float
    new: float
    reason: str
    clamped: bool = False
    #: causal trace of the epoch whose review produced this decision
    trace_id: Optional[str] = None

    def as_dict(self) -> Dict[str, object]:
        """Plain-JSON form (one audit-log line)."""
        return dataclasses.asdict(self)


#: the knobs the controller may move, in apply order
KNOBS = (
    "shards",
    "admission_rate",
    "admission_burst",
    "cache_capacity",
    "max_staleness",
)


class DecisionEngine:
    """The pure decision core: signals in, gated knob targets out.

    Holds only deterministic state (per-knob last-change epochs, the
    quiet-epoch streak) so that identical signal streams always produce
    identical decision sequences; the side-effecting apply path lives in
    :class:`RuntimeController`.
    """

    def __init__(
        self, config: ControllerConfig, baseline: Dict[str, float]
    ) -> None:
        config.validate()
        missing = [knob for knob in KNOBS if knob not in baseline]
        if missing:
            raise ControlError(f"baseline missing knobs: {missing}")
        self.config = config
        self.baseline = {knob: float(baseline[knob]) for knob in KNOBS}
        self._last_change: Dict[str, int] = {}
        self._quiet_streak = 0

    # ------------------------------------------------------------------
    def step(
        self, signals: ControlSignals
    ) -> Tuple[Condition, List[ControlDecision]]:
        """Diagnose one epoch and emit the gated decisions for it."""
        condition = self.diagnose(signals)
        decisions: List[ControlDecision] = []
        for knob, target, reason in self._plan(condition, signals):
            decision = self._gate(knob, target, reason, condition, signals)
            if decision is not None:
                decisions.append(decision)
                self._last_change[knob] = signals.epoch
        return condition, decisions

    # ------------------------------------------------------------------
    def diagnose(self, s: ControlSignals) -> Condition:
        """Classify the epoch (the first matching condition wins)."""
        c = self.config
        if (
            s.breakers_open > 0
            or s.staleness_served > c.policy.staleness_bound
        ):
            self._quiet_streak = 0
            return Condition.DEGRADED_READS
        if s.rejections_delta > 0:
            self._quiet_streak = 0
            return Condition.OVERLOAD
        if s.depth_ratio >= c.high_water:
            self._quiet_streak = 0
            return Condition.UNDER_PROVISIONED
        if self._skewed(s):
            self._quiet_streak = 0
            return Condition.HOT_SKEW
        if s.depth_ratio <= c.low_water and s.degraded_sessions == 0:
            self._quiet_streak += 1
            if (
                self._quiet_streak >= c.idle_epochs
                and self._above_baseline(s)
            ):
                return Condition.IDLE
            return Condition.HEALTHY
        # inside the hysteresis band: neither growth nor reclaim evidence
        self._quiet_streak = 0
        return Condition.HEALTHY

    def _skewed(self, s: ControlSignals) -> bool:
        if s.groups_total == 0 or s.num_shards >= self.config.limits.max_shards:
            return False
        if s.groups_max < self.config.skew_min_groups:
            return False
        mean = s.groups_total / s.num_shards
        return s.groups_max >= self.config.skew_factor * mean

    def _above_baseline(self, s: ControlSignals) -> bool:
        return (
            s.num_shards > self.baseline["shards"]
            or s.admission_rate > self.baseline["admission_rate"]
            or s.admission_burst > self.baseline["admission_burst"]
            or s.cache_capacity > self.baseline["cache_capacity"]
            or s.max_staleness != self.baseline["max_staleness"]
        )

    # ------------------------------------------------------------------
    def _plan(
        self, condition: Condition, s: ControlSignals
    ) -> List[Tuple[str, float, str]]:
        """Raw (knob, target, reason) proposals before gating."""
        c = self.config
        proposals: List[Tuple[str, float, str]] = []
        if condition is Condition.DEGRADED_READS:
            if s.max_staleness > c.policy.staleness_bound:
                proposals.append((
                    "max_staleness",
                    float(c.policy.staleness_bound),
                    "narrow degraded reads to the staleness SLO while "
                    f"{s.breakers_open} breaker(s) are open",
                ))
        elif condition is Condition.OVERLOAD:
            if s.saturated_delta == 0 and s.depth_ratio < c.high_water:
                # rate-limited shedding with queue headroom: open the door
                proposals.append((
                    "admission_rate",
                    max(s.admission_rate, 1.0) * c.admission_growth,
                    f"{s.rejections_delta} rejection(s) this epoch with "
                    "queue headroom: raise the token refill rate",
                ))
                proposals.append((
                    "admission_burst",
                    max(s.admission_burst, 1.0) * c.admission_growth,
                    "raise the burst capacity alongside the refill rate",
                ))
            else:
                # queues are genuinely full: more capacity, not more load
                proposals.append((
                    "shards",
                    float(s.num_shards + 1),
                    "queue-saturated shedding: add a shard",
                ))
        elif condition in (Condition.UNDER_PROVISIONED, Condition.HOT_SKEW):
            why = (
                f"inbox depth at {s.depth_ratio:.2f} of bound"
                if condition is Condition.UNDER_PROVISIONED
                else f"hottest shard owns {s.groups_max} of "
                f"{s.groups_total} groups"
            )
            proposals.append((
                "shards", float(s.num_shards + 1), f"{why}: add a shard"
            ))
        elif condition is Condition.IDLE:
            proposals.extend(self._relax(s))
        if (
            condition not in (Condition.IDLE, Condition.FROZEN)
            and s.cache_evictions_delta > 0
            and s.cache_lookups_delta > 0
            and s.cache_hit_rate < c.cache_hit_target
        ):
            proposals.append((
                "cache_capacity",
                float(int(s.cache_capacity * c.cache_growth)),
                f"hit rate {s.cache_hit_rate:.2f} below target with "
                "evictions this epoch: grow the cache",
            ))
        return proposals

    def _relax(self, s: ControlSignals) -> List[Tuple[str, float, str]]:
        """Step every grown knob back toward the static baseline."""
        c = self.config
        reason = f"{self._quiet_streak} quiet epoch(s): reclaim capacity"
        out: List[Tuple[str, float, str]] = []
        if s.num_shards > self.baseline["shards"]:
            out.append(("shards", float(s.num_shards - 1), reason))
        if s.admission_rate > self.baseline["admission_rate"]:
            out.append((
                "admission_rate",
                max(self.baseline["admission_rate"],
                    s.admission_rate / c.admission_growth),
                reason,
            ))
        if s.admission_burst > self.baseline["admission_burst"]:
            out.append((
                "admission_burst",
                max(self.baseline["admission_burst"],
                    s.admission_burst / c.admission_growth),
                reason,
            ))
        if s.cache_capacity > self.baseline["cache_capacity"]:
            out.append((
                "cache_capacity",
                max(self.baseline["cache_capacity"],
                    float(int(s.cache_capacity / c.cache_growth))),
                reason,
            ))
        if (
            s.max_staleness != self.baseline["max_staleness"]
            and s.breakers_open == 0
        ):
            out.append((
                "max_staleness",
                self.baseline["max_staleness"],
                "no breakers open: restore the configured staleness bound",
            ))
        return out

    # ------------------------------------------------------------------
    def _gate(
        self,
        knob: str,
        target: float,
        reason: str,
        condition: Condition,
        s: ControlSignals,
    ) -> Optional[ControlDecision]:
        """Cooldown + clamp + no-op filter for one proposal."""
        last = self._last_change.get(knob)
        if last is not None and s.epoch - last < self.config.cooldown_epochs:
            return None
        value, clamped = self.config.limits.clamp(knob, target)
        current = self._current(knob, s)
        if value == current:
            return None
        return ControlDecision(
            epoch=s.epoch,
            condition=condition.value,
            knob=knob,
            old=current,
            new=value,
            reason=reason,
            clamped=clamped,
        )

    @staticmethod
    def _current(knob: str, s: ControlSignals) -> float:
        return {
            "shards": float(s.num_shards),
            "admission_rate": s.admission_rate,
            "admission_burst": s.admission_burst,
            "cache_capacity": float(s.cache_capacity),
            "max_staleness": float(s.max_staleness),
        }[knob]


class RuntimeController:
    """The side-effecting half: collect signals, apply gated decisions.

    Attach one to a harness with
    :meth:`~repro.serve.harness.ServeHarness.attach_controller`; the
    harness then calls :meth:`review` inside every ``submit`` (within the
    epoch's activated trace scope, so decision points join the causal
    tree).  All knob moves happen between batches on the caller thread —
    the engine's quiet point — so no locking is needed beyond what the
    knobs themselves provide.
    """

    def __init__(self, harness, config: Optional[ControllerConfig] = None):
        self.harness = harness
        self.config = config or ControllerConfig()
        self.config.validate()
        self.baseline = self._capture_baseline()
        self.engine = DecisionEngine(self.config, self.baseline)
        self.audit: Deque[ControlDecision] = deque(
            maxlen=self.config.audit_capacity
        )
        self.frozen = False
        self.freeze_reason: Optional[str] = None
        self.decisions_total = 0
        self.condition_counts: Dict[str, int] = {}
        self.last_condition = Condition.HEALTHY.value
        self._prev_levels: Dict[str, float] = {}
        self._prev_snapshot = None

    def _capture_baseline(self) -> Dict[str, float]:
        h = self.harness
        return {
            "shards": float(h.engine.num_shards),
            "admission_rate": h.admission.bucket.rate,
            "admission_burst": h.admission.bucket.capacity,
            "cache_capacity": float(h.cache.capacity),
            "max_staleness": float(h.supervisor.config.max_staleness),
        }

    # ------------------------------------------------------------------
    # the per-epoch loop
    # ------------------------------------------------------------------
    def review(self, result) -> List[ControlDecision]:
        """Run one observe → diagnose → remediate pass for ``result``.

        Returns the decisions applied this epoch (empty while frozen).
        """
        if self.frozen:
            return []
        signals = self.collect(result.epoch)
        condition, decisions = self.engine.step(signals)
        self.last_condition = condition.value
        self.condition_counts[condition.value] = (
            self.condition_counts.get(condition.value, 0) + 1
        )
        return [self._apply(decision) for decision in decisions]

    def collect(self, epoch: int) -> ControlSignals:
        """Build this epoch's :class:`ControlSignals`.

        With telemetry attached the signals come from a registry snapshot
        diff (after refreshing the ``serve_control_*`` surface gauges);
        without telemetry the same numbers are read straight off the
        components with controller-held previous levels.
        """
        h = self.harness
        surface = self._surface()
        groups = {
            index: len(sources)
            for index, sources in h.engine.sources_owned().items()
        }
        if h.telemetry is not None:
            h._record_telemetry()
            record_control_surface(h.telemetry.registry, surface, groups)
            snapshot = h.telemetry.registry.snapshot()
            signals = ControlSignals.from_snapshot(
                snapshot, self._prev_snapshot, epoch=epoch
            )
            self._prev_snapshot = snapshot
            h.reset_staleness_high_water()
            return signals
        admission = h.admission.stats()
        cache = h.cache.stats
        levels = {
            "rejections": float(sum(admission["rejections"].values())),
            "saturated": float(
                admission["rejections"].get("queue-saturated", 0)
            ),
            "admitted": float(
                admission["admitted_registrations"]
                + admission["admitted_batches"]
            ),
            "lookups": float(cache.lookups),
            "evictions": float(cache.evicted_families),
        }
        previous = self._prev_levels
        supervisor = h.supervisor.stats()
        sessions = h.sessions.by_state()
        signals = ControlSignals(
            epoch=epoch,
            num_shards=h.engine.num_shards,
            queue_bound=admission["queue_bound"],
            depth_max=max(
                (shard.depth for shard in h.engine.shards), default=0
            ),
            groups_max=max(groups.values(), default=0),
            groups_total=sum(groups.values()),
            rejections_delta=int(
                levels["rejections"] - previous.get("rejections", 0.0)
            ),
            saturated_delta=int(
                levels["saturated"] - previous.get("saturated", 0.0)
            ),
            admitted_delta=int(
                levels["admitted"] - previous.get("admitted", 0.0)
            ),
            cache_hit_rate=cache.hit_rate,
            cache_lookups_delta=int(
                levels["lookups"] - previous.get("lookups", 0.0)
            ),
            cache_evictions_delta=int(
                levels["evictions"] - previous.get("evictions", 0.0)
            ),
            breakers_open=sum(
                1 for breaker in supervisor["breakers"].values()
                if breaker["state"] != "closed"
            ),
            degraded_sessions=sessions.get("degraded", 0),
            answer_p99=surface["answer_p99"],
            staleness_served=int(surface["staleness_served"]),
            admission_rate=surface["admission_rate"],
            admission_burst=surface["admission_burst"],
            cache_capacity=int(surface["cache_capacity"]),
            max_staleness=int(surface["max_staleness"]),
        )
        self._prev_levels = levels
        h.reset_staleness_high_water()
        return signals

    def _surface(self) -> Dict[str, float]:
        """Current knob values + derived SLO measurements."""
        h = self.harness
        return {
            "shards": float(h.engine.num_shards),
            "admission_rate": h.admission.bucket.rate,
            "admission_burst": h.admission.bucket.capacity,
            "cache_capacity": float(h.cache.capacity),
            "max_staleness": float(h.supervisor.config.max_staleness),
            "answer_p99": h.answer_p99(),
            "staleness_served": float(h.staleness_high_water()),
        }

    # ------------------------------------------------------------------
    # applying decisions
    # ------------------------------------------------------------------
    def _apply(self, decision: ControlDecision) -> ControlDecision:
        """Push one decision onto the live system, audit it, trace it."""
        h = self.harness
        if decision.knob == "shards":
            h.rescale_shards(int(decision.new))
        elif decision.knob == "admission_rate":
            h.admission.retune(registration_rate=decision.new)
        elif decision.knob == "admission_burst":
            h.admission.retune(registration_burst=decision.new)
        elif decision.knob == "cache_capacity":
            h.cache.set_capacity(int(decision.new))
        elif decision.knob == "max_staleness":
            h.supervisor.config.max_staleness = int(decision.new)
        else:  # pragma: no cover - guarded by KNOBS everywhere
            raise ControlError(f"unknown knob {decision.knob!r}")
        trace_id = None
        if h.telemetry is not None:
            context = h.telemetry.tracer.current_context()
            trace_id = context.trace_id if context is not None else None
            h.telemetry.point(
                "controller.decision",
                epoch=decision.epoch,
                condition=decision.condition,
                knob=decision.knob,
                old=decision.old,
                new=decision.new,
                reason=decision.reason,
                clamped=decision.clamped,
            )
        decision = dataclasses.replace(decision, trace_id=trace_id)
        self.audit.append(decision)
        self.decisions_total += 1
        return decision

    # ------------------------------------------------------------------
    # kill switch
    # ------------------------------------------------------------------
    def freeze(self, reason: str = "operator") -> List[ControlDecision]:
        """Revert every knob to the static baseline and stop deciding.

        Returns the revert decisions (tagged ``frozen`` in the audit log).
        Idempotent; :meth:`thaw` re-enables the loop without touching
        knobs.
        """
        if self.frozen:
            return []
        epoch = self.harness.engine.epoch
        reverts: List[ControlDecision] = []
        current = self._surface()
        for knob in KNOBS:
            target = self.baseline[knob]
            if target == current[knob]:
                continue
            if knob in ("admission_rate", "admission_burst") and target <= 0:
                # a non-refilling baseline bucket cannot be restored via
                # the validated retune surface; leave the knob as-is
                continue
            reverts.append(self._apply(ControlDecision(
                epoch=epoch,
                condition=Condition.FROZEN.value,
                knob=knob,
                old=current[knob],
                new=target,
                reason=f"kill switch ({reason}): revert to static config",
            )))
        self.frozen = True
        self.freeze_reason = reason
        return reverts

    def thaw(self) -> None:
        """Re-enable the decision loop after a freeze."""
        self.frozen = False
        self.freeze_reason = None

    # ------------------------------------------------------------------
    # introspection / export
    # ------------------------------------------------------------------
    def stats(self) -> Dict[str, object]:
        """Point-in-time summary for ``ServeHarness.stats()`` and the CLI."""
        return {
            "frozen": self.frozen,
            "freeze_reason": self.freeze_reason,
            "decisions_total": self.decisions_total,
            "last_condition": self.last_condition,
            "conditions": dict(self.condition_counts),
            "knobs": {
                knob: value for knob, value in self._surface().items()
                if knob in KNOBS
            },
            "baseline": dict(self.baseline),
            "audit_size": len(self.audit),
        }

    def export_audit(self, path: str) -> int:
        """Write the audit log as JSONL; returns the record count."""
        decisions = list(self.audit)
        with open(path, "w") as handle:
            for decision in decisions:
                handle.write(json.dumps(decision.as_dict(), sort_keys=True))
                handle.write("\n")
        return len(decisions)

    def __repr__(self) -> str:
        return (
            f"RuntimeController(decisions={self.decisions_total}, "
            f"frozen={self.frozen}, last={self.last_condition})"
        )

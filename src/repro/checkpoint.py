"""Engine checkpointing.

Long-running streaming deployments periodically checkpoint their converged
state so a restart resumes from the last snapshot instead of replaying the
whole stream.  A checkpoint captures the topology, the per-query state
array and dependence parents; restoring rebuilds a ready-to-go engine and
verifies internal consistency.
"""

from __future__ import annotations

from typing import Optional, Type

import numpy as np

from repro.algorithms.base import MonotonicAlgorithm
from repro.algorithms.registry import get_algorithm
from repro.core.engine import CISGraphEngine
from repro.errors import ReproError
from repro.graph.dynamic import DynamicGraph
from repro.query import PairwiseQuery


class CheckpointError(ReproError):
    """A checkpoint could not be written or restored."""


_FORMAT_VERSION = 1


def save_checkpoint(path: str, engine: CISGraphEngine) -> None:
    """Write a CISGraph-O engine's full state to ``path`` (npz)."""
    graph = engine.graph
    edges = list(graph.edges())
    np.savez_compressed(
        path,
        version=np.int64(_FORMAT_VERSION),
        algorithm=np.str_(engine.algorithm.name),
        source=np.int64(engine.query.source),
        destination=np.int64(engine.query.destination),
        num_vertices=np.int64(graph.num_vertices),
        edges_src=np.array([e[0] for e in edges], dtype=np.int64),
        edges_dst=np.array([e[1] for e in edges], dtype=np.int64),
        edges_wgt=np.array([e[2] for e in edges], dtype=np.float64),
        states=np.array(engine.state.states, dtype=np.float64),
        parents=np.array(engine.state.parents, dtype=np.int64),
    )


def load_checkpoint(
    path: str,
    algorithm: Optional[MonotonicAlgorithm] = None,
    verify: bool = True,
) -> CISGraphEngine:
    """Restore a CISGraph-O engine from a checkpoint.

    With ``verify`` (default) the restored state array is checked to be a
    converged fixpoint of the restored topology — a corrupted or mismatched
    checkpoint raises :class:`CheckpointError` instead of silently serving
    wrong answers.
    """
    try:
        data = np.load(path)
    except Exception as exc:  # pragma: no cover - I/O environment specific
        raise CheckpointError(f"cannot read checkpoint {path!r}: {exc}") from exc
    version = int(data["version"])
    if version != _FORMAT_VERSION:
        raise CheckpointError(
            f"checkpoint {path!r} has format v{version}, expected v{_FORMAT_VERSION}"
        )
    algorithm = algorithm or get_algorithm(str(data["algorithm"]))
    if algorithm.name != str(data["algorithm"]):
        raise CheckpointError(
            f"checkpoint was taken with {data['algorithm']!r}, "
            f"got algorithm {algorithm.name!r}"
        )
    num_vertices = int(data["num_vertices"])
    graph = DynamicGraph.from_edges(
        num_vertices,
        zip(
            data["edges_src"].tolist(),
            data["edges_dst"].tolist(),
            data["edges_wgt"].tolist(),
        ),
    )
    query = PairwiseQuery(int(data["source"]), int(data["destination"]))
    engine = CISGraphEngine(graph, algorithm, query)
    engine.state.states = data["states"].tolist()
    engine.state.parents = data["parents"].tolist()
    engine.keypath.rebuild(engine.state.parents)
    engine._initialized = True

    if verify:
        try:
            engine.state.check_converged()
        except AssertionError as exc:
            raise CheckpointError(
                f"checkpoint {path!r} failed convergence verification: {exc}"
            ) from exc
    return engine

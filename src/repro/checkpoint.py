"""Engine checkpointing.

Long-running streaming deployments periodically checkpoint their converged
state so a restart resumes from the last snapshot instead of replaying the
whole stream.  A checkpoint captures the topology, the per-query state
array and dependence parents; restoring rebuilds a ready-to-go engine and
verifies internal consistency.

Format v2 additionally records the *stream position* — the snapshot id the
state corresponds to and the write-ahead-log sequence it covers — so
:class:`repro.resilience.recovery.RecoveryManager` can restore a checkpoint
and replay only the WAL tail.  v1 checkpoints (no position) still load, with
the position defaulting to snapshot 0.
"""

from __future__ import annotations

import os
import zipfile
from dataclasses import dataclass
from typing import Optional, Type

import numpy as np

from repro.algorithms.base import MonotonicAlgorithm
from repro.algorithms.registry import get_algorithm
from repro.core.engine import CISGraphEngine
from repro.errors import ReproError
from repro.graph.dynamic import DynamicGraph
from repro.query import PairwiseQuery


class CheckpointError(ReproError):
    """A checkpoint could not be written or restored."""


_FORMAT_VERSION = 2
_SUPPORTED_VERSIONS = (1, 2)


@dataclass
class CheckpointInfo:
    """Stream-position metadata of a checkpoint (without restoring it)."""

    version: int
    algorithm: str
    snapshot_id: int
    wal_sequence: int
    num_vertices: int
    num_edges: int


def save_checkpoint(
    path: str,
    engine: CISGraphEngine,
    snapshot_id: int = 0,
    wal_sequence: int = 0,
) -> None:
    """Write a CISGraph-O engine's full state to ``path`` (npz).

    ``snapshot_id`` is the stream snapshot the state corresponds to and
    ``wal_sequence`` the last WAL record sequence covered by the state;
    standalone callers (no WAL) can leave both at 0.

    The write is atomic: the archive goes to a temporary file in the same
    directory, is fsynced, then renamed over ``path`` — a crash mid-write
    leaves the previous checkpoint intact instead of a truncated archive
    (pipelines overwrite one ``checkpoint.npz`` in place, so a torn write
    would otherwise destroy the only recovery base).
    """
    if not path.endswith(".npz"):
        path = path + ".npz"  # np.savez appends it; keep the path identical
    graph = engine.graph
    edges = list(graph.edges())
    tmp_path = path + ".tmp"
    try:
        with open(tmp_path, "wb") as handle:
            np.savez_compressed(
                handle,
                version=np.int64(_FORMAT_VERSION),
                algorithm=np.str_(engine.algorithm.name),
                source=np.int64(engine.query.source),
                destination=np.int64(engine.query.destination),
                num_vertices=np.int64(graph.num_vertices),
                snapshot_id=np.int64(snapshot_id),
                wal_sequence=np.int64(wal_sequence),
                edges_src=np.array([e[0] for e in edges], dtype=np.int64),
                edges_dst=np.array([e[1] for e in edges], dtype=np.int64),
                edges_wgt=np.array([e[2] for e in edges], dtype=np.float64),
                states=np.array(engine.state.states, dtype=np.float64),
                parents=np.array(engine.state.parents, dtype=np.int64),
            )
            handle.flush()
            os.fsync(handle.fileno())
        os.replace(tmp_path, path)
    except BaseException:
        try:
            os.unlink(tmp_path)
        except OSError:
            pass
        raise
    try:  # make the rename itself durable
        dir_fd = os.open(os.path.dirname(path) or ".", os.O_RDONLY)
    except OSError:
        return
    try:
        os.fsync(dir_fd)
    finally:
        os.close(dir_fd)


def _open_archive(path: str):
    """``np.load`` with typed errors for missing/corrupt archives."""
    try:
        data = np.load(path)
    except FileNotFoundError as exc:
        raise CheckpointError(f"checkpoint {path!r} does not exist") from exc
    except (zipfile.BadZipFile, OSError, ValueError) as exc:
        raise CheckpointError(f"checkpoint {path!r} is corrupt: {exc}") from exc
    if not isinstance(data, np.lib.npyio.NpzFile):
        raise CheckpointError(f"checkpoint {path!r} is not an npz archive")
    return data


def _check_version(path: str, data) -> int:
    try:
        version = int(data["version"])
    except KeyError as exc:
        raise CheckpointError(f"checkpoint {path!r} has no version field") from exc
    if version not in _SUPPORTED_VERSIONS:
        raise CheckpointError(
            f"checkpoint {path!r} has format v{version}, "
            f"expected one of {_SUPPORTED_VERSIONS}"
        )
    return version


def _position(data, version: int) -> tuple:
    if version < 2:
        return 0, 0
    return int(data["snapshot_id"]), int(data["wal_sequence"])


def checkpoint_info(path: str) -> CheckpointInfo:
    """Read a checkpoint's metadata without rebuilding the engine."""
    with _open_archive(path) as data:
        try:
            version = _check_version(path, data)
            snapshot_id, wal_sequence = _position(data, version)
            return CheckpointInfo(
                version=version,
                algorithm=str(data["algorithm"]),
                snapshot_id=snapshot_id,
                wal_sequence=wal_sequence,
                num_vertices=int(data["num_vertices"]),
                num_edges=len(data["edges_src"]),
            )
        except KeyError as exc:
            raise CheckpointError(
                f"checkpoint {path!r} is missing field {exc}"
            ) from exc


def load_checkpoint(
    path: str,
    algorithm: Optional[MonotonicAlgorithm] = None,
    verify: bool = True,
) -> CISGraphEngine:
    """Restore a CISGraph-O engine from a checkpoint.

    With ``verify`` (default) the restored state array is checked to be a
    converged fixpoint of the restored topology — a corrupted or mismatched
    checkpoint raises :class:`CheckpointError` instead of silently serving
    wrong answers.
    """
    with _open_archive(path) as data:
        version = _check_version(path, data)
        try:
            stored_algorithm = str(data["algorithm"])
            algorithm = algorithm or get_algorithm(stored_algorithm)
            if algorithm.name != stored_algorithm:
                raise CheckpointError(
                    f"checkpoint was taken with {stored_algorithm!r}, "
                    f"got algorithm {algorithm.name!r}"
                )
            num_vertices = int(data["num_vertices"])
            graph = DynamicGraph.from_edges(
                num_vertices,
                zip(
                    data["edges_src"].tolist(),
                    data["edges_dst"].tolist(),
                    data["edges_wgt"].tolist(),
                ),
            )
            query = PairwiseQuery(int(data["source"]), int(data["destination"]))
            engine = CISGraphEngine(graph, algorithm, query)
            engine.state.states = data["states"].tolist()
            engine.state.parents = data["parents"].tolist()
        except KeyError as exc:
            raise CheckpointError(
                f"checkpoint {path!r} is missing field {exc}"
            ) from exc
    engine.keypath.rebuild(engine.state.parents)
    engine._initialized = True

    if verify:
        try:
            engine.state.check_converged()
        except AssertionError as exc:
            raise CheckpointError(
                f"checkpoint {path!r} failed convergence verification: {exc}"
            ) from exc
    return engine

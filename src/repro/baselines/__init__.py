"""Software baselines the paper compares against."""

from repro.baselines.coalescing import CoalescingEngine
from repro.baselines.coldstart import ColdStartEngine
from repro.baselines.hubs import HubIndex, select_hubs
from repro.baselines.incremental import PlainIncrementalEngine, UpdateRecord
from repro.baselines.sgraph import BoundPrunedEngine, PnPEngine, SGraphEngine

__all__ = [
    "CoalescingEngine",
    "ColdStartEngine",
    "HubIndex",
    "select_hubs",
    "PlainIncrementalEngine",
    "UpdateRecord",
    "BoundPrunedEngine",
    "PnPEngine",
    "SGraphEngine",
]

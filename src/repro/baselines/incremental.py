"""Plain contribution-independent incremental engine.

This is the workflow of existing streaming systems the paper's motivation
section measures (Figure 2): every update is processed sequentially, in
arrival order, with no classification — each addition relaxes and
broadcasts, each supplying deletion triggers the tagging + reset + repair
traversal.  Per-update attribution records how much work each individual
update caused and whether it ever moved the destination's state, which is
exactly the data behind the paper's useless-update/redundant-computation
breakdown.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import List, Optional, Set

from repro.algorithms.base import MonotonicAlgorithm
from repro.engine import PairwiseEngine
from repro.graph.batch import EdgeUpdate, UpdateBatch
from repro.graph.dynamic import DynamicGraph
from repro.incremental import IncrementalState
from repro.metrics import BatchResult, OpCounts
from repro.query import PairwiseQuery


@dataclass
class UpdateRecord:
    """Per-update attribution from the plain engine.

    ``contributed`` means the update's processing wave changed the
    destination's state — the operational ground truth for "this update
    affected the result" in the Figure 2 breakdown.
    """

    update: EdgeUpdate
    ops: OpCounts = field(default_factory=OpCounts)
    contributed: bool = False
    changed_any_state: bool = False
    activated: int = 0


class PlainIncrementalEngine(PairwiseEngine):
    """Sequential, classification-free incremental processing."""

    name = "incremental"

    def __init__(
        self,
        graph: DynamicGraph,
        algorithm: MonotonicAlgorithm,
        query: PairwiseQuery,
        record_updates: bool = False,
        deletion_policy: str = "supplier",
    ) -> None:
        super().__init__(graph, algorithm, query)
        self.state = IncrementalState(graph, algorithm, query.source)
        self.record_updates = record_updates
        #: "supplier" = KickStarter-like dependence tagging;
        #: "reachable" = GraphFly-like conservative reset (Figure 2 setup)
        self.deletion_policy = deletion_policy
        #: per-update attribution of the last batch (when recording)
        self.last_records: List[UpdateRecord] = []

    def _do_initialize(self) -> None:
        self.state.full_compute(self.init_ops)

    @property
    def answer(self) -> float:
        return self.state.states[self.query.destination]

    def _do_batch(self, batch: UpdateBatch) -> BatchResult:
        response = OpCounts()
        records: List[UpdateRecord] = []
        destination = self.query.destination

        for upd in batch:
            ops = OpCounts()
            activated: Set[int] = set()
            before = self.state.states[destination]
            if upd.is_addition:
                old_weight = self.graph.out_adj(upd.u).get(upd.v)
                self.graph.add_edge(upd.u, upd.v, upd.weight)
                if old_weight is None:
                    self.state.process_addition(
                        upd.u, upd.v, upd.weight, ops, activated=activated
                    )
                elif old_weight != upd.weight:
                    self.state.process_reweight(
                        upd.u, upd.v, upd.weight, ops, activated=activated
                    )
            else:
                if self.graph.remove_edge(upd.u, upd.v, missing_ok=True):
                    self.state.process_deletion(
                        upd.u,
                        upd.v,
                        ops,
                        activated=activated,
                        policy=self.deletion_policy,
                    )
            ops.updates_processed += 1
            if self.record_updates:
                records.append(
                    UpdateRecord(
                        update=upd,
                        ops=ops,
                        contributed=self.state.states[destination] != before,
                        changed_any_state=bool(activated) or ops.state_writes > 0,
                        activated=len(activated),
                    )
                )
            response += ops

        self.last_records = records
        stats = {}
        if records:
            useless = sum(1 for r in records if not r.contributed)
            stats["useless_updates"] = useless
            stats["useless_fraction"] = useless / len(records)
        return BatchResult(answer=self.answer, response_ops=response, stats=stats)

"""Hub-vertex distance index for SGraph-style bound pruning.

SGraph (Section II-B) selects the 16 highest-degree vertices as *hubs* and
maintains, for every vertex, its distance from each hub; the distances feed
the upper/lower bounds used to prune activations, and keeping them fresh on
every batch is the "boundary maintaining" overhead the paper observes.

The index is query-independent (hub sources do not depend on ``s``/``d``),
so the harness may share one instance across the ten query pairs of an
experiment; each engine still charges the full maintenance cost to its own
response, matching the paper's single-query scenario.
"""

from __future__ import annotations

from typing import Dict, List, Optional, Sequence

from repro.algorithms.base import MonotonicAlgorithm
from repro.graph.batch import UpdateBatch
from repro.graph.dynamic import DynamicGraph
from repro.incremental import IncrementalState
from repro.metrics import OpCounts


def select_hubs(graph: DynamicGraph, num_hubs: int = 16) -> List[int]:
    """The ``num_hubs`` vertices with the highest total degree."""
    if num_hubs <= 0:
        raise ValueError("num_hubs must be positive")
    degrees = graph.total_degrees()
    order = sorted(range(len(degrees)), key=lambda v: (-degrees[v], v))
    return order[: min(num_hubs, len(order))]


class HubIndex:
    """Converged one-to-all state per hub, maintained incrementally.

    Owns a private copy of the topology (engines mutate their own copies on
    a different schedule).  :meth:`process_batch` advances the index by one
    batch and returns the maintenance cost; repeated calls with the same
    ``batch_id`` return the recorded cost without re-processing, enabling
    safe sharing across engines that replay the same stream.
    """

    def __init__(
        self,
        graph: DynamicGraph,
        algorithm: MonotonicAlgorithm,
        num_hubs: int = 16,
        hubs: Optional[Sequence[int]] = None,
    ) -> None:
        self.graph = graph.copy()
        self.algorithm = algorithm
        self.hubs: List[int] = (
            list(hubs) if hubs is not None else select_hubs(self.graph, num_hubs)
        )
        self._states: Dict[int, IncrementalState] = {}
        self._processed: Dict[int, OpCounts] = {}
        self.init_ops = OpCounts()
        for hub in self.hubs:
            state = IncrementalState(self.graph, algorithm, hub)
            state.full_compute(self.init_ops)
            self._states[hub] = state

    # ------------------------------------------------------------------
    def hub_state(self, hub: int, vertex: int) -> float:
        """Converged state of ``vertex`` as seen from ``hub``."""
        return self._states[hub].states[vertex]

    def process_batch(self, batch_id: int, batch: UpdateBatch) -> OpCounts:
        """Advance the index by one batch.

        Idempotent per ``batch_id``: engines replaying the same stream share
        one index, and only the first caller per batch advances it — later
        callers get the recorded maintenance cost.  Batches must arrive in
        stream order the first time around.
        """
        if batch_id in self._processed:
            return self._processed[batch_id].copy()
        if self._processed and batch_id != max(self._processed) + 1:
            raise ValueError(
                f"hub index saw batch {batch_id} but last processed was "
                f"{max(self._processed)}; batches must arrive in order"
            )
        ops = OpCounts()
        for upd in batch:
            if upd.is_addition:
                old_weight = self.graph.out_adj(upd.u).get(upd.v)
                self.graph.add_edge(upd.u, upd.v, upd.weight)
                if old_weight == upd.weight:
                    continue
                for state in self._states.values():
                    if old_weight is None:
                        state.process_addition(upd.u, upd.v, upd.weight, ops)
                    else:
                        state.process_reweight(upd.u, upd.v, upd.weight, ops)
            else:
                if not self.graph.remove_edge(upd.u, upd.v, missing_ok=True):
                    continue
                for state in self._states.values():
                    state.process_deletion(upd.u, upd.v, ops)
        # All maintenance work is bound bookkeeping from the query's point of
        # view; fold the traffic into the hub_relaxations counter as well so
        # result tables can report it separately.
        ops.hub_relaxations += ops.relaxations
        self._processed[batch_id] = ops
        return ops.copy()

    # ------------------------------------------------------------------
    def ppsp_lower_bound(self, vertex: int, destination: int) -> float:
        """Landmark (ALT) lower bound on ``dist(vertex -> destination)``.

        From the triangle inequality ``dist(h,d) <= dist(h,v) + dist(v,d)``:
        ``dist(v,d) >= max_h (dist(h,d) - dist(h,v))``, clipped at zero.
        Only valid for additive shortest-path semirings (PPSP).
        """
        bound = 0.0
        for hub in self.hubs:
            hd = self.hub_state(hub, destination)
            hv = self.hub_state(hub, vertex)
            if hd == float("inf") or hv == float("inf"):
                continue
            gap = hd - hv
            if gap > bound:
                bound = gap
        return bound

"""Coalescing incremental engine (TDGraph / JetStream style).

The hardware systems the paper builds on (Section II-A) accelerate
one-to-all streaming analytics by *coalescing*: updates and activations
targeting the same vertex are merged before propagation, so a vertex is
broadcast once per wave instead of once per triggering update.  This
engine is the software analogue and completes the baseline spectrum
between the per-update plain engine and the contribution-aware CISGraph-O:

* **additions**: the whole batch is applied, every added edge is relaxed,
  and all improved targets seed a single deduplicated worklist — one
  coalesced wave instead of one wave per update;
* **deletions**: all supplying deletions are collected, their dependence
  subtrees are tagged and reset *together*, every reset vertex is
  re-derived once, and a single wave re-converges — merging the repair
  work that overlapping subtrees would otherwise repeat.

No contribution classification happens: like the systems it models, the
engine processes every update, so its response time still pays for the
useless ones.
"""

from __future__ import annotations

from collections import deque
from typing import Deque, List, Set

from repro.algorithms.base import MonotonicAlgorithm
from repro.engine import PairwiseEngine
from repro.graph.batch import EdgeUpdate, UpdateBatch, net_effects
from repro.graph.dynamic import DynamicGraph
from repro.incremental import IncrementalState
from repro.metrics import BatchResult, OpCounts
from repro.query import PairwiseQuery


class CoalescingEngine(PairwiseEngine):
    """Batch-coalesced incremental processing without classification."""

    name = "coalescing"

    def __init__(
        self,
        graph: DynamicGraph,
        algorithm: MonotonicAlgorithm,
        query: PairwiseQuery,
    ) -> None:
        super().__init__(graph, algorithm, query)
        self.state = IncrementalState(graph, algorithm, query.source)

    def _do_initialize(self) -> None:
        self.state.full_compute(self.init_ops)

    @property
    def answer(self) -> float:
        return self.state.states[self.query.destination]

    # ------------------------------------------------------------------
    def _do_batch(self, batch: UpdateBatch) -> BatchResult:
        ops = OpCounts()
        graph = self.graph
        alg = self.algorithm
        state = self.state

        effective = net_effects(batch, lambda u, v: graph.out_adj(u).get(v))
        for upd in effective:
            graph.apply_update(upd, missing_ok=False)
        ops.updates_processed += len(effective)

        # ---- coalesced deletion repair first: collect every supplying
        # deletion, tag the union of their dependence subtrees once.
        supplier_deletions = [
            upd
            for upd in effective
            if upd.is_deletion and state.parents[upd.v] == upd.u
        ]
        ops.tag_ops += sum(1 for upd in effective if upd.is_deletion)
        tagged: Set[int] = set()
        frontier: Deque[int] = deque()
        for upd in supplier_deletions:
            if upd.v not in tagged:
                tagged.add(upd.v)
                frontier.append(upd.v)
        while frontier:
            x = frontier.popleft()
            for y in graph.out_adj(x):
                ops.tag_ops += 1
                if y not in tagged and state.parents[y] == x:
                    tagged.add(y)
                    frontier.append(y)

        identity = alg.identity()
        for x in tagged:
            state.states[x] = identity
            state.parents[x] = -1
            ops.state_writes += 1

        seeds: Set[int] = set()
        better = alg.is_better
        propagate = alg.propagate
        transform = alg.transform_weight
        for x in tagged:
            if x == self.query.source:
                state.states[x] = alg.source_state()
                seeds.add(x)
                continue
            best = identity
            parent = -1
            for y, w in graph.in_adj(x).items():
                ops.edges_scanned += 1
                ops.relaxations += 1
                ops.state_reads += 1
                candidate = propagate(state.states[y], transform(w))
                if better(candidate, best):
                    best = candidate
                    parent = y
            if better(best, identity):
                state.states[x] = best
                state.parents[x] = parent
                ops.state_writes += 1
                ops.activations += 1
                seeds.add(x)

        # ---- coalesced additions: relax every added edge, merge improved
        # targets into the same single wave.
        for upd in effective:
            if not upd.is_addition:
                continue
            ops.relaxations += 1
            ops.state_reads += 2
            candidate = propagate(
                state.states[upd.u], transform(upd.weight)
            )
            if better(candidate, state.states[upd.v]):
                state.states[upd.v] = candidate
                state.parents[upd.v] = upd.u
                ops.state_writes += 1
                ops.activations += 1
                seeds.add(upd.v)

        state.propagate(sorted(seeds), ops)
        return BatchResult(
            answer=self.answer,
            response_ops=ops,
            stats={"coalesced_seeds": len(seeds), "tagged": len(tagged)},
        )

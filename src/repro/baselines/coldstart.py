"""Cold-Start (CS) baseline.

The paper's reference point: "performs a full computation from the initial
state for each snapshot to obtain timely results" (Section IV-A).  No state
is reused across snapshots, so every batch costs a complete best-first
solve; every other system is reported as a speedup over this engine
(Table IV).
"""

from __future__ import annotations

from repro.algorithms.base import MonotonicAlgorithm
from repro.algorithms.solvers import dijkstra
from repro.engine import PairwiseEngine
from repro.graph.batch import UpdateBatch
from repro.graph.dynamic import DynamicGraph
from repro.metrics import BatchResult, OpCounts
from repro.query import PairwiseQuery


class ColdStartEngine(PairwiseEngine):
    """Full recomputation per snapshot.

    ``early_exit`` lets the solve stop once the destination settles — the
    pairwise shortcut a cold-start system could take.  The paper's CS
    converges fully (it reports one-to-all-style full computation), which is
    the default.
    """

    name = "cs"

    def __init__(
        self,
        graph: DynamicGraph,
        algorithm: MonotonicAlgorithm,
        query: PairwiseQuery,
        early_exit: bool = False,
    ) -> None:
        super().__init__(graph, algorithm, query)
        self.early_exit = early_exit
        self._answer = algorithm.identity()

    def _do_initialize(self) -> None:
        result = dijkstra(
            self.graph,
            self.algorithm,
            self.query.source,
            destination=self.query.destination,
            early_exit=self.early_exit,
        )
        self.init_ops += result.ops
        self._answer = result.answer(self.query.destination)

    def _do_batch(self, batch: UpdateBatch) -> BatchResult:
        self.graph.apply_batch(batch)
        result = dijkstra(
            self.graph,
            self.algorithm,
            self.query.source,
            destination=self.query.destination,
            early_exit=self.early_exit,
        )
        self._answer = result.answer(self.query.destination)
        ops = result.ops
        ops.updates_processed += len(batch)
        return BatchResult(answer=self._answer, response_ops=ops)

    @property
    def answer(self) -> float:
        return self._answer

"""SGraph baseline: bound-based activation pruning with hub maintenance.

SGraph (ASPLOS'23; Section II-B of the CISGraph paper) prunes vertex
activations whose state falls outside conservative bounds derived from a set
of hub vertices, and pays for it by keeping per-hub distance vectors fresh on
every batch.  The reproduction keeps the two sound pruning rules:

* **generic rule** (all five algorithms): suppress broadcasting a vertex
  whose new state is not strictly better than the current answer at the
  destination — since ``(+)`` is non-improving, no extension of that state
  can beat the answer;
* **landmark rule** (PPSP only): suppress when ``state[v] + LB(v, d)``
  cannot beat the answer, with ``LB`` the hub (ALT) lower bound.

Pruning is *deferred*, not discarded: suppressed vertices are flushed to
full convergence before any deletion repair (deletions worsen the answer,
which would invalidate prune decisions) and at the end of the batch, so the
maintained state array is always converged at batch boundaries.  See
DESIGN.md section 5 for the soundness argument.
"""

from __future__ import annotations

import math
from typing import Optional, Set

from repro.algorithms.base import MonotonicAlgorithm
from repro.baselines.hubs import HubIndex
from repro.engine import PairwiseEngine
from repro.graph.batch import UpdateBatch
from repro.graph.dynamic import DynamicGraph
from repro.incremental import IncrementalState
from repro.metrics import BatchResult, OpCounts
from repro.query import PairwiseQuery


class BoundPrunedEngine(PairwiseEngine):
    """Shared machinery for bound-pruning engines (SGraph, PnP)."""

    name = "bound-pruned"

    def __init__(
        self,
        graph: DynamicGraph,
        algorithm: MonotonicAlgorithm,
        query: PairwiseQuery,
    ) -> None:
        super().__init__(graph, algorithm, query)
        self.state = IncrementalState(graph, algorithm, query.source)

    # ------------------------------------------------------------------
    def _do_initialize(self) -> None:
        self.state.full_compute(self.init_ops)

    @property
    def answer(self) -> float:
        return self.state.states[self.query.destination]

    # ------------------------------------------------------------------
    def _prune(self, vertex: int, state: float) -> bool:
        """Sound suppression test; subclasses may strengthen it."""
        answer = self.state.states[self.query.destination]
        return not self.algorithm.is_better(state, answer)

    def _maintenance_ops(self, batch: UpdateBatch) -> OpCounts:
        """Per-batch bound bookkeeping (hub updates for SGraph)."""
        return OpCounts()

    # ------------------------------------------------------------------
    def _do_batch(self, batch: UpdateBatch) -> BatchResult:
        response = OpCounts()
        post = OpCounts()
        response += self._maintenance_ops(batch)

        activated: Set[int] = set()
        deletions_seen = False

        def enter_deletion_mode() -> None:
            # Deletions (and repair-triggering re-weights) worsen the
            # answer, invalidating earlier prune decisions: finish
            # suppressed convergence first and stop pruning afterwards.
            nonlocal deletions_seen
            if not deletions_seen:
                self.state.flush_suppressed(response, activated=activated)
                deletions_seen = True

        for upd in batch:
            response.updates_processed += 1
            if upd.is_addition:
                old_weight = self.graph.out_adj(upd.u).get(upd.v)
                self.graph.add_edge(upd.u, upd.v, upd.weight)
                if old_weight is None:
                    self.state.process_addition(
                        upd.u,
                        upd.v,
                        upd.weight,
                        response,
                        prune=None if deletions_seen else self._prune,
                        activated=activated,
                    )
                elif old_weight != upd.weight:
                    enter_deletion_mode()
                    self.state.process_reweight(
                        upd.u, upd.v, upd.weight, response, activated=activated
                    )
            else:
                if not self.graph.remove_edge(upd.u, upd.v, missing_ok=True):
                    continue
                enter_deletion_mode()
                self.state.process_deletion(
                    upd.u, upd.v, response, activated=activated
                )

        # Background completion of any remaining suppressed broadcasts so the
        # next batch starts from a converged array.
        self.state.flush_suppressed(post, activated=activated)
        return BatchResult(
            answer=self.answer,
            response_ops=response,
            post_ops=post,
            stats={"activated": len(activated)},
        )


class SGraphEngine(BoundPrunedEngine):
    """Hub-based upper/lower-bound pruning (SGraph)."""

    name = "sgraph"

    def __init__(
        self,
        graph: DynamicGraph,
        algorithm: MonotonicAlgorithm,
        query: PairwiseQuery,
        num_hubs: int = 16,
        hub_index: Optional[HubIndex] = None,
    ) -> None:
        super().__init__(graph, algorithm, query)
        self.num_hubs = num_hubs
        self._external_hub_index = hub_index
        self.hub_index: Optional[HubIndex] = hub_index
        self._batch_counter = 0
        self._use_landmark = algorithm.name == "ppsp"

    def _do_initialize(self) -> None:
        super()._do_initialize()
        if self.hub_index is None:
            self.hub_index = HubIndex(self.graph, self.algorithm, self.num_hubs)
            self.init_ops += self.hub_index.init_ops

    def _maintenance_ops(self, batch: UpdateBatch) -> OpCounts:
        assert self.hub_index is not None
        self._batch_counter += 1
        return self.hub_index.process_batch(self._batch_counter, batch)

    def _prune(self, vertex: int, state: float) -> bool:
        answer = self.state.states[self.query.destination]
        if not self.algorithm.is_better(state, answer):
            return True
        if self._use_landmark and answer != math.inf:
            assert self.hub_index is not None
            bound = self.hub_index.ppsp_lower_bound(vertex, self.query.destination)
            if state + bound >= answer:
                return True
        return False


class PnPEngine(BoundPrunedEngine):
    """Upper-bound-only pruning (PnP), no hub maintenance."""

    name = "pnp"

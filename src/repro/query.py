"""Pairwise query descriptor shared by every engine."""

from __future__ import annotations

from dataclasses import dataclass

from repro.errors import QueryError


@dataclass(frozen=True)
class PairwiseQuery:
    """A point-to-point query ``Q(source -> destination)``.

    The paper evaluates queries between a pair of *distinct* vertices; the
    constructor enforces that invariant.
    """

    source: int
    destination: int

    def __post_init__(self) -> None:
        if self.source == self.destination:
            raise QueryError(
                f"pairwise query requires distinct vertices, got {self.source} twice"
            )
        if self.source < 0 or self.destination < 0:
            raise QueryError(
                f"vertex ids must be non-negative, got ({self.source}, {self.destination})"
            )

    def __str__(self) -> str:
        return f"Q({self.source} -> {self.destination})"

    def validate(self, num_vertices: int) -> None:
        """Raise :class:`QueryError` unless both endpoints fit the graph."""
        if self.source >= num_vertices or self.destination >= num_vertices:
            raise QueryError(
                f"{self} references vertices outside a {num_vertices}-vertex graph"
            )

"""Operation-count metrics shared by every engine.

The paper evaluates *computations* (Figure 5a), *activated vertices*
(Figure 5b) and *processing time* (Table IV).  Software engines in this
reproduction are instrumented with :class:`OpCounts`; the analytic CPU cost
model (:mod:`repro.hw.cpu_model`) converts counts into simulated time so
that baseline comparisons measure algorithmic work rather than Python
interpreter overhead (see DESIGN.md, substitution list).
"""

from __future__ import annotations

from dataclasses import dataclass, field, fields
from typing import Dict


@dataclass
class OpCounts:
    """Counters for the basic operations of pairwise streaming analytics.

    ``relaxations`` is the paper's "computations" metric: one application of
    the algorithm's ``(+)``/``(x)`` pair to an edge.
    """

    relaxations: int = 0
    state_reads: int = 0
    state_writes: int = 0
    edges_scanned: int = 0
    heap_ops: int = 0
    classification_checks: int = 0
    tag_ops: int = 0
    hub_relaxations: int = 0
    bound_checks: int = 0
    updates_processed: int = 0
    activations: int = 0

    def __add__(self, other: "OpCounts") -> "OpCounts":
        merged = OpCounts()
        for f in fields(OpCounts):
            setattr(merged, f.name, getattr(self, f.name) + getattr(other, f.name))
        return merged

    def __iadd__(self, other: "OpCounts") -> "OpCounts":
        for f in fields(OpCounts):
            setattr(self, f.name, getattr(self, f.name) + getattr(other, f.name))
        return self

    def copy(self) -> "OpCounts":
        return OpCounts(**self.as_dict())

    def as_dict(self) -> Dict[str, int]:
        return {f.name: getattr(self, f.name) for f in fields(OpCounts)}

    def total_compute(self) -> int:
        """All ALU-style work: relaxations plus bookkeeping checks."""
        return (
            self.relaxations
            + self.classification_checks
            + self.tag_ops
            + self.hub_relaxations
            + self.bound_checks
        )

    def __bool__(self) -> bool:
        return any(getattr(self, f.name) for f in fields(OpCounts))


@dataclass
class ResilienceCounters:
    """Operational counters of the fault-tolerance layer.

    Incremented by :mod:`repro.resilience` (WAL, recovery, dead-letter
    quarantine, differential guard) and exposed for dashboards and tests:
    a production deployment alarms on ``quarantined``/``guard_divergences``
    rather than discovering bad input or silent corruption from a crash.
    """

    wal_records_appended: int = 0
    wal_records_replayed: int = 0
    wal_torn_tails: int = 0
    wal_corrupt_records: int = 0
    checkpoints_written: int = 0
    recoveries: int = 0
    batches_replayed: int = 0
    batches_skipped: int = 0
    quarantined: int = 0
    skipped_updates: int = 0
    retries: int = 0
    retry_giveups: int = 0
    guard_checks: int = 0
    guard_divergences: int = 0
    guard_fallbacks: int = 0

    def __add__(self, other: "ResilienceCounters") -> "ResilienceCounters":
        merged = ResilienceCounters()
        for f in fields(ResilienceCounters):
            setattr(merged, f.name, getattr(self, f.name) + getattr(other, f.name))
        return merged

    def as_dict(self) -> Dict[str, int]:
        return {f.name: getattr(self, f.name) for f in fields(ResilienceCounters)}

    def __bool__(self) -> bool:
        return any(getattr(self, f.name) for f in fields(ResilienceCounters))


@dataclass
class BatchResult:
    """Outcome of processing one update batch with one engine.

    ``response_ops`` covers the work needed before the engine can answer the
    pairwise query for the new snapshot (the paper's *response time*
    numerator); ``post_ops`` covers the remaining drain work (e.g. delayed
    deletions processed after the answer).  ``answer`` is the converged query
    result on the new snapshot.
    """

    answer: float
    response_ops: OpCounts = field(default_factory=OpCounts)
    post_ops: OpCounts = field(default_factory=OpCounts)
    stats: Dict[str, float] = field(default_factory=dict)

    @property
    def total_ops(self) -> OpCounts:
        return self.response_ops + self.post_ops

"""Causal trace propagation and offline trace analysis.

A *trace* is the causal tree of everything one ingest batch caused: the
WAL append, the canonical-graph commit, the fan-out to every shard inbox,
each shard's contribution-aware processing, the epoch barrier, cache
invalidation, supervision actions and the per-session answer deliveries.
Spans on one thread nest through the tracer's thread-local stack; the
cross-thread hops (engine -> shard inbox, harness -> supervisor) carry an
explicit :class:`TraceContext` — ``(trace_id, parent_span_id)`` — minted
at batch ingest and re-activated on the receiving thread with
:meth:`~repro.obs.spans.SpanTracer.activate`, so the shard's spans parent
onto the ingest thread's ``engine.batch`` span instead of starting a
disconnected tree.

The second half of the module works offline, on the JSONL written by
:meth:`~repro.obs.telemetry.Telemetry.export_dir`: :func:`build_traces`
reassembles span events into :class:`Trace` trees (point events with a
``trace_id`` ride along as instant markers), :func:`critical_path` walks
the latest-finishing child chain, and :func:`render_waterfall` draws the
per-batch timeline the ``repro trace`` subcommand prints.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence

from repro.obs.events import Event


@dataclass(frozen=True)
class TraceContext:
    """The portable half of a trace: what crosses a thread boundary.

    ``trace_id`` names the causal tree (minted by the root span);
    ``parent_span_id`` is the span the next hop should parent onto.
    Contexts are immutable — every hop builds a fresh one.
    """

    trace_id: str
    parent_span_id: Optional[int] = None

    def as_fields(self) -> Dict[str, object]:
        """The event-payload form (merged into point events)."""
        fields: Dict[str, object] = {"trace_id": self.trace_id}
        if self.parent_span_id is not None:
            fields["parent_id"] = self.parent_span_id
        return fields


# ----------------------------------------------------------------------
# offline reconstruction (from exported events.jsonl)
# ----------------------------------------------------------------------

#: span-event payload keys that are structure, not user attributes
_STRUCTURAL = ("span_id", "parent_id", "trace_id", "duration", "status",
               "error", "thread")


@dataclass
class SpanNode:
    """One span, re-linked into its trace tree."""

    span_id: int
    parent_id: Optional[int]
    trace_id: str
    name: str
    start: float
    duration: float
    status: str = "ok"
    error: Optional[str] = None
    thread: str = ""
    attrs: Dict[str, object] = field(default_factory=dict)
    children: List["SpanNode"] = field(default_factory=list)
    #: the span referenced a parent that never made it into the export
    #: (telemetry frame dropped mid-trace, or the parent span is still
    #: open) — promoted to a root with the gap annotated, not lost
    orphan: bool = False

    @property
    def end(self) -> float:
        return self.start + self.duration


@dataclass
class Trace:
    """One causal tree: the spans and point events sharing a trace_id."""

    trace_id: str
    roots: List[SpanNode] = field(default_factory=list)
    nodes: Dict[int, SpanNode] = field(default_factory=dict)
    #: point events (answers, supervision actions, ...) linked to the trace
    points: List[Event] = field(default_factory=list)

    @property
    def root(self) -> SpanNode:
        return self.roots[0]

    @property
    def start(self) -> float:
        return min(node.start for node in self.roots)

    @property
    def end(self) -> float:
        return max(node.end for node in self.nodes.values())

    @property
    def duration(self) -> float:
        return self.end - self.start

    @property
    def threads(self) -> List[str]:
        return sorted({node.thread for node in self.nodes.values()})

    @property
    def errors(self) -> int:
        return sum(1 for node in self.nodes.values() if node.status == "error")

    @property
    def orphans(self) -> int:
        """Spans whose parent never surfaced (dropped/partial telemetry)."""
        return sum(1 for node in self.nodes.values() if node.orphan)

    def find(self, name: str) -> List[SpanNode]:
        """Every span named ``name`` in this trace, in start order."""
        return sorted(
            (n for n in self.nodes.values() if n.name == name),
            key=lambda n: n.start,
        )


def _node_from_event(event: Event) -> SpanNode:
    fields = event.fields
    return SpanNode(
        span_id=int(fields["span_id"]),
        parent_id=(None if fields.get("parent_id") is None
                   else int(fields["parent_id"])),
        trace_id=str(fields["trace_id"]),
        name=event.name,
        start=event.ts,
        duration=float(fields["duration"]),
        status=str(fields.get("status", "ok")),
        error=(str(fields["error"]) if fields.get("error") is not None
               else None),
        thread=str(fields.get("thread", "")),
        attrs={k: v for k, v in fields.items() if k not in _STRUCTURAL},
    )


def build_traces(events: Sequence[Event]) -> List[Trace]:
    """Reassemble exported events into :class:`Trace` trees.

    Span events without a ``trace_id`` (pre-tracing exports) are skipped;
    a span whose parent never closed (dropped past the log bound, a
    telemetry frame lost at the process boundary, or still open at
    export) is promoted to a root of its trace with :attr:`SpanNode.orphan`
    set — the waterfall annotates the gap rather than losing the subtree.
    Traces come back ordered by their root's start time.
    """
    traces: Dict[str, Trace] = {}
    for event in events:
        if event.kind == "span" and "trace_id" in event.fields:
            node = _node_from_event(event)
            trace = traces.setdefault(node.trace_id, Trace(node.trace_id))
            trace.nodes[node.span_id] = node
        elif event.kind == "point" and "trace_id" in event.fields:
            trace_id = str(event.fields["trace_id"])
            traces.setdefault(trace_id, Trace(trace_id)).points.append(event)
    for trace in traces.values():
        for node in trace.nodes.values():
            parent = (trace.nodes.get(node.parent_id)
                      if node.parent_id is not None else None)
            if parent is None:
                node.orphan = node.parent_id is not None
                trace.roots.append(node)
            else:
                parent.children.append(node)
        for node in trace.nodes.values():
            node.children.sort(key=lambda n: (n.start, n.span_id))
        trace.roots.sort(key=lambda n: (n.start, n.span_id))
        trace.points.sort(key=lambda e: e.ts)
    return sorted(
        (t for t in traces.values() if t.roots),
        key=lambda t: t.start,
    )


def critical_path(trace: Trace) -> List[SpanNode]:
    """Root-to-leaf chain through the latest-finishing child at each level.

    In a fan-out/barrier shape this is the chain that bounded the batch's
    wall clock: the barrier ends when the slowest shard does, so following
    the child with the greatest end time attributes the critical time.
    """
    node = trace.root
    path = [node]
    while node.children:
        node = max(node.children, key=lambda n: (n.end, n.span_id))
        path.append(node)
    return path


def _format_ms(seconds: float) -> str:
    return f"{seconds * 1e3:.3f}ms"


def _bar(offset: float, duration: float, total: float, width: int) -> str:
    if total <= 0:
        return "#" * width
    lead = int(round(offset / total * width))
    lead = min(lead, width - 1)
    length = max(1, int(round(duration / total * width)))
    length = min(length, width - lead)
    return " " * lead + "#" * length + " " * (width - lead - length)


def render_waterfall(trace: Trace, width: int = 48,
                     max_points: int = 24) -> str:
    """Fixed-width waterfall of one trace, critical path starred.

    One row per span (indented by tree depth, bar positioned on the
    trace's own timeline), then the trace's point events as ``+offset``
    markers, then one critical-path attribution line.
    """
    base = trace.start
    total = trace.duration
    critical = {node.span_id for node in critical_path(trace)}

    header_attrs = " ".join(
        f"{key}={value}" for key, value in sorted(trace.root.attrs.items())
    )
    lines = [
        f"trace {trace.trace_id} · {trace.root.name}"
        + (f" · {header_attrs}" if header_attrs else "")
        + f" · {_format_ms(total)} · {len(trace.nodes)} spans"
        + (f" · {trace.orphans} orphaned" if trace.orphans else "")
        + f" · threads: {', '.join(trace.threads)}"
    ]

    def walk(node: SpanNode, depth: int) -> None:
        label = "  " * depth + node.name
        if node.orphan:
            label += f" ?gap(parent {node.parent_id} missing)"
        if node.status == "error":
            label += f" !{node.error or 'error'}"
        bar = _bar(node.start - base, node.duration, total, width)
        mark = " *" if node.span_id in critical else ""
        extras = " ".join(
            f"{key}={value}" for key, value in sorted(node.attrs.items())
        )
        lines.append(
            f"  {label:<34} |{bar}| {_format_ms(node.duration):>10}"
            f"  [{node.thread}]{mark}"
            + (f"  {extras}" if extras else "")
        )
        for child in node.children:
            walk(child, depth + 1)

    for root in trace.roots:
        walk(root, 0)

    shown = trace.points[:max_points]
    for event in shown:
        payload = " ".join(
            f"{key}={value}" for key, value in sorted(event.fields.items())
            if key not in ("trace_id", "parent_id")
        )
        lines.append(
            f"  + {_format_ms(event.ts - base):>10}  {event.name}"
            + (f"  {payload}" if payload else "")
        )
    if len(trace.points) > len(shown):
        lines.append(f"  + ... {len(trace.points) - len(shown)} more point event(s)")

    path = critical_path(trace)
    path_time = path[-1].end - path[0].start
    share = (path_time / total * 100.0) if total > 0 else 100.0
    lines.append(
        "  critical path: " + " > ".join(node.name for node in path)
        + f"  ({_format_ms(path_time)}, {share:.0f}% of trace)"
    )
    return "\n".join(lines)


def trace_rows(events: Sequence[Event]) -> List[Dict[str, object]]:
    """Per-trace duration rollups (the ``telemetry summarize`` table)."""
    rows: List[Dict[str, object]] = []
    for trace in build_traces(events):
        root = trace.root
        rows.append({
            "trace": trace.trace_id,
            "root": root.name,
            "sequence": root.attrs.get("sequence", ""),
            "spans": len(trace.nodes),
            "points": len(trace.points),
            "errors": trace.errors,
            "threads": len(trace.threads),
            "duration_s": trace.duration,
        })
    return rows


def format_trace_table(rows: Sequence[Dict[str, object]]) -> str:
    """Fixed-width text rendering of :func:`trace_rows`."""
    if not rows:
        return "(no traces)"
    header = (f"{'trace':<12}{'root':<24}{'seq':>6}{'spans':>7}"
              f"{'points':>8}{'err':>5}{'thr':>5}{'duration':>12}")
    lines = [header, "-" * len(header)]
    for row in rows:
        lines.append(
            f"{row['trace']:<12}{row['root']:<24}{str(row['sequence']):>6}"
            f"{row['spans']:>7}{row['points']:>8}{row['errors']:>5}"
            f"{row['threads']:>5}{row['duration_s']:>12.6f}"
        )
    return "\n".join(lines)

"""Contribution provenance: why did Q(s→d) answer what it answered?

The paper's whole point is that most updates don't matter — classification
(valuable / delayed / useless via the triangle-inequality tests) and the
key path (the witness chain actually carrying the answer) decide what the
engine does per batch.  This module records exactly those decisions per
source group per epoch so a surprising answer can be *explained* after
the fact:

* the classification outcome **counts** — the very dict
  :meth:`~repro.core.multiquery.SourceGroup.process_batch` returned, so
  an explain is bit-identical to the engine's own batch stats;
* the triangle-inequality **verdicts** for a configurable sample of the
  batch's updates (computed against the pre-batch converged states by
  :meth:`~repro.core.multiquery.SourceGroup.classify_sample`);
* **key-path evolution** per destination: the witness chain before and
  after the batch, which valuable additions now supply the new chain
  (they displaced the old witness) and which deletions broke the old one;
* the per-destination answers, the epoch's trace id and batch size.

Everything is stored as plain dicts/lists (JSON-ready), bounded to the
most recent ``capacity`` epochs, and thread-safe — shard workers record
their groups concurrently while the ingest thread records the anchor.

Query with :meth:`ProvenanceRecorder.explain` ("explain Q(s→d) at epoch
N"), surfaced through :meth:`repro.serve.harness.ServeHarness.explain`
and the serve script protocol's ``explain`` command.
"""

from __future__ import annotations

import threading
from collections import OrderedDict
from dataclasses import dataclass, field
from typing import Dict, List, Optional, Tuple

from repro.errors import ProvenanceMissError


def _update_dict(upd) -> Dict[str, object]:
    """An :class:`~repro.graph.batch.EdgeUpdate` as a JSON-ready dict."""
    return {
        "kind": "add" if upd.is_addition else "delete",
        "u": upd.u,
        "v": upd.v,
        "weight": upd.weight,
    }


@dataclass
class KeyPathChange:
    """One destination whose witness chain moved during a batch."""

    destination: int
    before: List[int]
    after: List[int]
    #: valuable additions lying on the *new* chain — the updates that
    #: displaced the old witness path
    displaced_by: List[Dict[str, object]] = field(default_factory=list)
    #: deletions that removed a dependence edge of the *old* chain
    broken_by: List[Dict[str, object]] = field(default_factory=list)

    def as_dict(self) -> Dict[str, object]:
        return {
            "destination": self.destination,
            "before": self.before,
            "after": self.after,
            "displaced_by": self.displaced_by,
            "broken_by": self.broken_by,
        }


@dataclass
class GroupRecord:
    """What one source group did in one epoch."""

    epoch: int
    source: int
    #: shard index, or -1 for the engine's inline anchor group
    shard: int
    counts: Dict[str, int] = field(default_factory=dict)
    answers: Dict[int, float] = field(default_factory=dict)
    verdicts: List[Dict[str, object]] = field(default_factory=list)
    keypath_changes: List[KeyPathChange] = field(default_factory=list)


class GroupObservation:
    """Pre-batch snapshot of a group, finished into a :class:`GroupRecord`.

    Construct *before* :meth:`SourceGroup.process_batch` mutates the
    converged states (the sampled verdicts and the before-chains are only
    meaningful against the pre-batch snapshot), then call :meth:`finish`
    with the counts the real processing returned.
    """

    def __init__(self, group, effective, sample_limit: int) -> None:
        self.effective = effective
        self.before = {
            destination: list(group.keypaths[destination].vertices())
            for destination in group.destinations
        }
        self.verdicts = group.classify_sample(effective, sample_limit)

    def finish(
        self, group, counts: Dict[str, int], epoch: int, shard: int
    ) -> GroupRecord:
        changes: List[KeyPathChange] = []
        for destination, tracker in group.keypaths.items():
            after = list(tracker.vertices())
            before = self.before.get(destination, [])
            if after == before:
                continue
            new_edges = set(zip(after, after[1:]))
            old_edges = set(zip(before, before[1:]))
            changes.append(KeyPathChange(
                destination=destination,
                before=before,
                after=after,
                displaced_by=[
                    _update_dict(upd) for upd in self.effective
                    if upd.is_addition and (upd.u, upd.v) in new_edges
                ],
                broken_by=[
                    _update_dict(upd) for upd in self.effective
                    if upd.is_deletion and (upd.u, upd.v) in old_edges
                ],
            ))
        return GroupRecord(
            epoch=epoch,
            source=group.source,
            shard=shard,
            counts=dict(counts),
            answers={
                destination: group.answer(destination)
                for destination in group.destinations
            },
            verdicts=self.verdicts,
            keypath_changes=changes,
        )


@dataclass
class _EpochRecord:
    epoch: int
    trace_id: Optional[str] = None
    updates: int = 0
    #: ``(shard, source) -> GroupRecord`` (anchor records under shard -1)
    groups: Dict[Tuple[int, int], GroupRecord] = field(default_factory=dict)


class ProvenanceRecorder:
    """Bounded, thread-safe store of per-epoch contribution provenance."""

    def __init__(self, sample_limit: int = 8, capacity: int = 64) -> None:
        if capacity <= 0:
            raise ValueError("capacity must be positive")
        #: how many of each batch's updates get sampled verdicts
        self.sample_limit = sample_limit
        self.capacity = capacity
        self._epochs: "OrderedDict[int, _EpochRecord]" = OrderedDict()
        self._lock = threading.Lock()

    # ------------------------------------------------------------------
    # recording (engine + shard workers)
    # ------------------------------------------------------------------
    def begin_batch(
        self, epoch: int, trace_id: Optional[str], updates: int
    ) -> None:
        """Open the epoch's record (ingest thread, before the fan-out)."""
        with self._lock:
            self._epochs[epoch] = _EpochRecord(
                epoch=epoch, trace_id=trace_id, updates=updates
            )
            self._epochs.move_to_end(epoch)
            while len(self._epochs) > self.capacity:
                self._epochs.popitem(last=False)

    def record_group(self, record: GroupRecord) -> None:
        """Attach one group's outcome to its epoch (any thread)."""
        with self._lock:
            epoch = self._epochs.get(record.epoch)
            if epoch is None:
                # a zombie worker finishing an epoch already evicted —
                # recreate the record so post-mortems still see it
                epoch = _EpochRecord(epoch=record.epoch)
                self._epochs[record.epoch] = epoch
            epoch.groups[(record.shard, record.source)] = record

    # ------------------------------------------------------------------
    # querying
    # ------------------------------------------------------------------
    def epochs(self) -> List[int]:
        with self._lock:
            return sorted(self._epochs)

    def batch_counts(self, epoch: int) -> Dict[str, int]:
        """Classification counts summed over every group of ``epoch``
        (anchor + all shards) — comparable bit-for-bit with the engine's
        own :class:`~repro.serve.engine.ServeBatchResult` stats."""
        with self._lock:
            record = self._epochs.get(epoch)
            if record is None:
                raise ProvenanceMissError(f"no provenance for epoch {epoch}")
            totals: Dict[str, int] = {}
            for group in record.groups.values():
                for key, value in group.counts.items():
                    totals[key] = totals.get(key, 0) + value
            return totals

    def explain(
        self, source: int, destination: int, epoch: Optional[int] = None
    ) -> Dict[str, object]:
        """Explain Q(source→destination) at ``epoch`` (default: latest).

        Raises :class:`~repro.errors.ProvenanceMissError` when the pair
        was not recorded at that epoch (evicted, never registered, or the
        group failed before publishing).
        """
        with self._lock:
            if epoch is None:
                candidates = [
                    e for e in reversed(self._epochs)
                    if any(
                        src == source and destination in rec.answers
                        for (_, src), rec in self._epochs[e].groups.items()
                    )
                ]
                if not candidates:
                    raise ProvenanceMissError(
                        f"no provenance recorded for Q({source}->{destination})"
                    )
                epoch = candidates[0]
            record = self._epochs.get(epoch)
            if record is None:
                raise ProvenanceMissError(
                    f"no provenance for epoch {epoch} "
                    f"(retained: {sorted(self._epochs) or 'none'})"
                )
            group = next(
                (rec for (_, src), rec in record.groups.items()
                 if src == source and destination in rec.answers),
                None,
            )
            if group is None:
                raise ProvenanceMissError(
                    f"Q({source}->{destination}) has no group record at "
                    f"epoch {epoch}"
                )
            change = next(
                (c for c in group.keypath_changes
                 if c.destination == destination),
                None,
            )
            return {
                "query": {"source": source, "destination": destination},
                "epoch": epoch,
                "trace_id": record.trace_id,
                "batch_updates": record.updates,
                "shard": group.shard,
                "answer": group.answers[destination],
                "counts": dict(group.counts),
                "verdicts": [dict(v) for v in group.verdicts],
                "keypath": (
                    change.as_dict() if change is not None
                    else {"changed": False}
                ),
            }

    def __repr__(self) -> str:
        with self._lock:
            return (
                f"ProvenanceRecorder(epochs={len(self._epochs)}, "
                f"sample_limit={self.sample_limit})"
            )

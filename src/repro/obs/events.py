"""Bounded in-process event log with JSONL export.

Spans, point events and operational markers all land here as
:class:`Event` records.  The log is bounded (telemetry must never OOM the
process it observes): past ``capacity`` new events are dropped, counted in
:attr:`EventLog.dropped`, and the *first* drop emits a one-time
:class:`TelemetryDropWarning` — silent loss is the one failure mode an
observability layer may not have.
"""

from __future__ import annotations

import json
import threading
import warnings
from dataclasses import dataclass, field
from typing import Callable, Dict, Iterator, List, Optional


class TelemetryDropWarning(UserWarning):
    """Raised (as a warning) the first time a bounded telemetry buffer drops."""


@dataclass(frozen=True)
class Event:
    """One telemetry record.

    ``ts`` is a monotonic-clock timestamp in seconds (comparable within a
    process, not across processes); ``kind`` partitions the namespace
    (``span`` | ``point``); ``fields`` is a flat JSON-serialisable payload.
    """

    ts: float
    kind: str
    name: str
    fields: Dict[str, object] = field(default_factory=dict)

    def as_dict(self) -> Dict[str, object]:
        return {"ts": self.ts, "kind": self.kind, "name": self.name, **self.fields}

    @classmethod
    def from_dict(cls, data: Dict[str, object]) -> "Event":
        payload = dict(data)
        ts = float(payload.pop("ts"))
        kind = str(payload.pop("kind"))
        name = str(payload.pop("name"))
        return cls(ts=ts, kind=kind, name=name, fields=payload)


class EventLog:
    """Append-only bounded event buffer (thread-safe).

    Shard workers and the ingest thread emit concurrently, so appends are
    serialized under one lock.  ``tap``, when set, sees *every* event —
    including ones the bounded log drops — which is how the flight
    recorder's per-thread rings stay complete even after the main log
    fills.  ``drop_counter`` (a duck-typed ``.inc()``-able, wired by
    :class:`~repro.obs.telemetry.Telemetry` to the ``obs.events.dropped``
    counter) makes drop volume visible in the metrics export, not just in
    the one-time warning.
    """

    def __init__(self, capacity: int = 65_536) -> None:
        if capacity <= 0:
            raise ValueError("capacity must be positive")
        self.capacity = capacity
        self._events: List[Event] = []
        self._lock = threading.Lock()
        self.dropped = 0
        #: observer invoked with every event (even dropped ones); must not
        #: raise into the instrumented code path
        self.tap: Optional[Callable[[Event], None]] = None
        #: counter bumped once per dropped event (``obs.events.dropped``)
        self.drop_counter = None

    # ------------------------------------------------------------------
    def append(self, event: Event) -> None:
        tap = self.tap
        if tap is not None:
            try:
                tap(event)
            except Exception:  # noqa: BLE001 - observing must never break
                pass
        with self._lock:
            if len(self._events) >= self.capacity:
                if self.dropped == 0:
                    warnings.warn(
                        f"EventLog full ({self.capacity} events): telemetry "
                        "events are being dropped from here on",
                        TelemetryDropWarning,
                        stacklevel=2,
                    )
                self.dropped += 1
                counter = self.drop_counter
            else:
                self._events.append(event)
                counter = None
        if counter is not None:
            counter.inc()

    def emit(self, kind: str, name: str, ts: float, **fields: object) -> None:
        self.append(Event(ts=ts, kind=kind, name=name, fields=fields))

    def clear(self) -> None:
        with self._lock:
            self._events.clear()
            self.dropped = 0

    # ------------------------------------------------------------------
    def __len__(self) -> int:
        return len(self._events)

    def __iter__(self) -> Iterator[Event]:
        with self._lock:
            return iter(list(self._events))

    def events(
        self, kind: Optional[str] = None, name: Optional[str] = None
    ) -> List[Event]:
        """Filtered view of the log."""
        with self._lock:
            snapshot = list(self._events)
        out = []
        for event in snapshot:
            if kind is not None and event.kind != kind:
                continue
            if name is not None and event.name != name:
                continue
            out.append(event)
        return out

    # ------------------------------------------------------------------
    def export_jsonl(self, path: str) -> int:
        """Write one JSON object per line; returns the number of lines."""
        with self._lock:
            snapshot = list(self._events)
        with open(path, "w") as handle:
            for event in snapshot:
                handle.write(json.dumps(event.as_dict(), sort_keys=True))
                handle.write("\n")
        return len(snapshot)


def load_jsonl(path: str) -> List[Event]:
    """Read an event log written by :meth:`EventLog.export_jsonl`."""
    events: List[Event] = []
    with open(path) as handle:
        for line in handle:
            line = line.strip()
            if line:
                events.append(Event.from_dict(json.loads(line)))
    return events

"""Metrics primitives: counters, gauges, fixed-bucket histograms, registry.

The paper's evaluation is built from per-batch numbers — computations
(Figure 5a), activations (Figure 5b), response time (Table IV) — and the
production north star (ROADMAP.md) adds operational counters from the
resilience layer and cycle/occupancy statistics from the simulator.  This
module gives all of them one vocabulary:

* :class:`Counter` — monotone event count (``engine_ops_total``);
* :class:`Gauge` — last-write-wins level (``spm_hit_rate``);
* :class:`Histogram` — fixed upper-bound buckets with exact count/sum/min/max
  and interpolated percentiles (``engine_batch_seconds``), RisGraph-style
  tail-latency accounting;
* :class:`MetricsRegistry` — the named, labelled instrument store with
  :meth:`~MetricsRegistry.snapshot` / :meth:`MetricsSnapshot.diff` semantics
  and a Prometheus text exposition formatter.

Everything here is dependency-free stdlib Python; nothing imports the rest
of :mod:`repro`, so every layer (engine, resilience, hw) can depend on it.

Instruments and the registry are **thread-safe**: the serve worker pool
(:mod:`repro.serve`) increments counters and observes histograms from
multiple shard threads concurrently, so every read-modify-write (and the
create-on-first-use path in :class:`MetricsRegistry`) is guarded by a lock.
The hot-path cost is one uncontended ``Lock`` acquire per update.
"""

from __future__ import annotations

import math
import threading
from bisect import bisect_left
from typing import Dict, Iterable, List, Mapping, Optional, Sequence, Tuple

#: Prometheus-style default latency buckets (seconds).
DEFAULT_LATENCY_BUCKETS: Tuple[float, ...] = (
    0.0005, 0.001, 0.0025, 0.005, 0.01, 0.025, 0.05,
    0.1, 0.25, 0.5, 1.0, 2.5, 5.0, 10.0,
)

#: Default buckets for dimensionless work counts (ops, cycles, records).
DEFAULT_COUNT_BUCKETS: Tuple[float, ...] = (
    1, 2, 5, 10, 25, 50, 100, 250, 500,
    1_000, 2_500, 5_000, 10_000, 25_000, 50_000, 100_000, 1_000_000,
)

LabelPairs = Tuple[Tuple[str, str], ...]


def _label_key(labels: Optional[Mapping[str, object]]) -> LabelPairs:
    if not labels:
        return ()
    return tuple(sorted((str(k), str(v)) for k, v in labels.items()))


def _format_labels(labels: LabelPairs) -> str:
    if not labels:
        return ""
    body = ",".join(f'{k}="{v}"' for k, v in labels)
    return "{" + body + "}"


class Counter:
    """Monotonically increasing count (thread-safe)."""

    kind = "counter"

    __slots__ = ("value", "_lock")

    def __init__(self) -> None:
        self.value = 0.0
        self._lock = threading.Lock()

    def inc(self, amount: float = 1.0) -> None:
        if amount < 0:
            raise ValueError("counters only go up; use a Gauge")
        with self._lock:
            self.value += amount

    def as_dict(self) -> Dict[str, float]:
        return {"value": self.value}


class Gauge:
    """Last-write-wins level; may move in both directions (thread-safe)."""

    kind = "gauge"

    __slots__ = ("value", "_lock")

    def __init__(self) -> None:
        self.value = 0.0
        self._lock = threading.Lock()

    def set(self, value: float) -> None:
        with self._lock:
            self.value = float(value)

    def inc(self, amount: float = 1.0) -> None:
        with self._lock:
            self.value += amount

    def dec(self, amount: float = 1.0) -> None:
        with self._lock:
            self.value -= amount

    def as_dict(self) -> Dict[str, float]:
        return {"value": self.value}


class Histogram:
    """Fixed-bucket histogram with exact extrema and estimated percentiles.

    ``buckets`` are inclusive upper bounds; an implicit ``+Inf`` bucket
    catches the overflow.  Percentiles are estimated by linear interpolation
    inside the containing bucket (clamped by the observed min/max, so small
    samples do not report values never seen).
    """

    kind = "histogram"

    __slots__ = ("bounds", "bucket_counts", "count", "sum", "min", "max", "_lock")

    def __init__(self, buckets: Sequence[float] = DEFAULT_LATENCY_BUCKETS) -> None:
        bounds = tuple(float(b) for b in buckets)
        if not bounds:
            raise ValueError("histogram needs at least one bucket bound")
        if list(bounds) != sorted(bounds) or len(set(bounds)) != len(bounds):
            raise ValueError("bucket bounds must be strictly increasing")
        self.bounds = bounds
        self.bucket_counts = [0] * (len(bounds) + 1)  # +Inf overflow at the end
        self.count = 0
        self.sum = 0.0
        self.min = math.inf
        self.max = -math.inf
        self._lock = threading.Lock()

    def observe(self, value: float) -> None:
        value = float(value)
        index = bisect_left(self.bounds, value)
        with self._lock:
            self.bucket_counts[index] += 1
            self.count += 1
            self.sum += value
            if value < self.min:
                self.min = value
            if value > self.max:
                self.max = value

    # ------------------------------------------------------------------
    def percentile(self, q: float) -> float:
        """Estimated ``q``-quantile (``q`` in [0, 1]) of observed values."""
        if not 0.0 <= q <= 1.0:
            raise ValueError("q must be within [0, 1]")
        if self.count == 0:
            return math.nan
        rank = q * self.count
        cumulative = 0
        for index, bucket_count in enumerate(self.bucket_counts):
            cumulative += bucket_count
            if cumulative >= rank and bucket_count:
                lo = self.bounds[index - 1] if index > 0 else 0.0
                hi = self.bounds[index] if index < len(self.bounds) else self.max
                fraction = (rank - (cumulative - bucket_count)) / bucket_count
                estimate = lo + (hi - lo) * fraction
                return min(max(estimate, self.min), self.max)
        return self.max

    def summary(self) -> Dict[str, float]:
        if self.count == 0:
            return {"count": 0, "sum": 0.0}
        return {
            "count": self.count,
            "sum": self.sum,
            "min": self.min,
            "max": self.max,
            "mean": self.sum / self.count,
            "p50": self.percentile(0.50),
            "p95": self.percentile(0.95),
            "p99": self.percentile(0.99),
        }

    def as_dict(self) -> Dict[str, object]:
        data: Dict[str, object] = {
            "buckets": {
                ("+Inf" if i == len(self.bounds) else repr(self.bounds[i])): n
                for i, n in enumerate(self.bucket_counts)
            },
        }
        data.update(self.summary())
        return data


class MetricsSnapshot:
    """Immutable point-in-time copy of a registry, diffable and exportable.

    The payload is plain JSON-serialisable data: a dict keyed by metric
    name, each entry carrying the metric ``type`` and a list of
    ``{labels, ...values}`` series.
    """

    def __init__(self, data: Dict[str, Dict[str, object]]) -> None:
        self.data = data

    def as_dict(self) -> Dict[str, Dict[str, object]]:
        return self.data

    def names(self) -> List[str]:
        return sorted(self.data)

    # ------------------------------------------------------------------
    def value(self, name: str, **labels: object) -> Optional[object]:
        """Counter/gauge value or histogram summary for one label set."""
        metric = self.data.get(name)
        if metric is None:
            return None
        wanted = [list(pair) for pair in _label_key(labels)]
        for series in metric["series"]:  # type: ignore[index]
            if series["labels"] == wanted:
                if metric["type"] == "histogram":
                    return {k: v for k, v in series.items() if k != "labels"}
                return series["value"]
        return None

    def total(self, name: str) -> float:
        """Sum of a counter/gauge across all label sets (0.0 when absent)."""
        metric = self.data.get(name)
        if metric is None:
            return 0.0
        if metric["type"] == "histogram":
            raise TypeError(f"{name} is a histogram; use value()/summary")
        return sum(series["value"] for series in metric["series"])  # type: ignore[index]

    # ------------------------------------------------------------------
    def diff(self, earlier: "MetricsSnapshot") -> "MetricsSnapshot":
        """Delta since ``earlier``: counters and histogram counts subtract,
        gauges keep their current (latest) level."""
        out: Dict[str, Dict[str, object]] = {}
        for name, metric in self.data.items():
            previous = earlier.data.get(name, {"series": []})
            prior = {
                tuple(map(tuple, s["labels"])): s
                for s in previous.get("series", [])
            }
            series_out = []
            for series in metric["series"]:  # type: ignore[index]
                key = tuple(map(tuple, series["labels"]))
                base = prior.get(key)
                entry = dict(series)
                if base is not None and metric["type"] == "counter":
                    entry["value"] = series["value"] - base["value"]
                elif base is not None and metric["type"] == "histogram":
                    entry["count"] = series.get("count", 0) - base.get("count", 0)
                    entry["sum"] = series.get("sum", 0.0) - base.get("sum", 0.0)
                    entry["buckets"] = {
                        k: v - base.get("buckets", {}).get(k, 0)
                        for k, v in series.get("buckets", {}).items()
                    }
                    for dropped in ("min", "max", "mean", "p50", "p95", "p99"):
                        entry.pop(dropped, None)
                series_out.append(entry)
            out[name] = {"type": metric["type"], "series": series_out}
        return MetricsSnapshot(out)


class MetricsRegistry:
    """Named, labelled instrument store.

    Instruments are created on first use and identified by
    ``(name, sorted label pairs)``; re-requesting with the same identity
    returns the same instrument, so callers can hold references on hot
    paths instead of re-resolving.
    """

    def __init__(self) -> None:
        self._metrics: Dict[str, Dict[LabelPairs, object]] = {}
        self._kinds: Dict[str, str] = {}
        self._buckets: Dict[str, Tuple[float, ...]] = {}
        # guards create-on-first-use and structural iteration: without it,
        # two threads requesting a new (name, labels) pair could each build
        # an instrument and one of them would silently lose every update
        self._lock = threading.RLock()

    # ------------------------------------------------------------------
    def _instrument(self, name: str, kind: str, labels, factory):
        key = _label_key(labels)
        with self._lock:
            registered = self._kinds.get(name)
            if registered is None:
                self._kinds[name] = kind
                self._metrics[name] = {}
            elif registered != kind:
                raise TypeError(
                    f"{name} already registered as {registered}, not {kind}"
                )
            family = self._metrics[name]
            instrument = family.get(key)
            if instrument is None:
                instrument = family[key] = factory()
            return instrument

    def counter(self, name: str, labels: Optional[Mapping[str, object]] = None) -> Counter:
        return self._instrument(name, "counter", labels, Counter)

    def gauge(self, name: str, labels: Optional[Mapping[str, object]] = None) -> Gauge:
        return self._instrument(name, "gauge", labels, Gauge)

    def histogram(
        self,
        name: str,
        labels: Optional[Mapping[str, object]] = None,
        buckets: Optional[Sequence[float]] = None,
    ) -> Histogram:
        with self._lock:
            if buckets is not None:
                bounds = tuple(float(b) for b in buckets)
                known = self._buckets.setdefault(name, bounds)
                if known != bounds:
                    raise ValueError(f"{name}: conflicting bucket bounds")
            chosen = self._buckets.get(name, DEFAULT_LATENCY_BUCKETS)
            return self._instrument(
                name, "histogram", labels, lambda: Histogram(chosen)
            )

    # ------------------------------------------------------------------
    def names(self) -> List[str]:
        with self._lock:
            return sorted(self._metrics)

    def snapshot(self) -> MetricsSnapshot:
        data: Dict[str, Dict[str, object]] = {}
        with self._lock:
            for name in sorted(self._metrics):
                series = []
                for key in sorted(self._metrics[name]):
                    instrument = self._metrics[name][key]
                    entry: Dict[str, object] = {
                        "labels": [list(pair) for pair in key]
                    }
                    entry.update(instrument.as_dict())  # type: ignore[union-attr]
                    series.append(entry)
                data[name] = {"type": self._kinds[name], "series": series}
        return MetricsSnapshot(data)

    def clear(self) -> None:
        with self._lock:
            self._metrics.clear()
            self._kinds.clear()
            self._buckets.clear()

    # ------------------------------------------------------------------
    def to_prometheus(self) -> str:
        """Prometheus text exposition (histograms as *_bucket/_sum/_count)."""
        lines: List[str] = []
        with self._lock:
            return self._to_prometheus_locked(lines)

    def _to_prometheus_locked(self, lines: List[str]) -> str:
        for name in sorted(self._metrics):
            kind = self._kinds[name]
            lines.append(f"# TYPE {name} {kind}")
            for key in sorted(self._metrics[name]):
                instrument = self._metrics[name][key]
                if kind == "histogram":
                    assert isinstance(instrument, Histogram)
                    cumulative = 0
                    for index, bucket_count in enumerate(instrument.bucket_counts):
                        cumulative += bucket_count
                        le = (
                            "+Inf"
                            if index == len(instrument.bounds)
                            else repr(instrument.bounds[index])
                        )
                        labelled = _format_labels(key + (("le", le),))
                        lines.append(f"{name}_bucket{labelled} {cumulative}")
                    lines.append(f"{name}_sum{_format_labels(key)} {instrument.sum}")
                    lines.append(f"{name}_count{_format_labels(key)} {instrument.count}")
                else:
                    value = instrument.value  # type: ignore[union-attr]
                    lines.append(f"{name}{_format_labels(key)} {value}")
        return "\n".join(lines) + "\n"

"""The :class:`Telemetry` facade and the process-wide default instance.

One ``Telemetry`` object bundles the three primitives — a
:class:`~repro.obs.metrics.MetricsRegistry`, a bounded
:class:`~repro.obs.events.EventLog` and a
:class:`~repro.obs.spans.SpanTracer` wired to both — plus the export
surface (JSONL events, JSON metrics snapshot, Prometheus text).

Telemetry is **opt-in**: engines and pipelines carry ``telemetry=None`` by
default and skip every instrumentation branch, so the disabled cost is one
``is None`` test per batch.  Enabling is either explicit (pass an instance)
or ambient: :func:`set_global_telemetry` / the :func:`use_telemetry`
context manager install a process-wide default that newly constructed
engines pick up — which is how ``repro query --telemetry`` instruments
engines built deep inside the experiment harness without threading a
parameter through every call site.
"""

from __future__ import annotations

import contextlib
import json
import os
import time
from typing import Callable, Dict, Iterator, Optional

from repro.obs.events import EventLog
from repro.obs.metrics import MetricsRegistry, MetricsSnapshot
from repro.obs.recorder import FlightRecorder
from repro.obs.spans import Span, SpanTracer
from repro.obs.tracing import TraceContext

#: filenames written by :meth:`Telemetry.export_dir`
EVENTS_FILENAME = "events.jsonl"
METRICS_FILENAME = "metrics.json"
PROMETHEUS_FILENAME = "metrics.prom"
#: subdirectory export_dir flushes pending flight-recorder bundles into
FLIGHT_DIRNAME = "flight"

#: schema tag stamped into every metrics.json export
METRICS_SCHEMA_VERSION = 1


class Telemetry:
    """Registry + event log + tracer + flight recorder, one export surface."""

    def __init__(
        self,
        event_capacity: int = 65_536,
        clock: Callable[[], float] = time.perf_counter,
        flight_capacity: int = 512,
    ) -> None:
        self.registry = MetricsRegistry()
        self.events = EventLog(capacity=event_capacity)
        # drop volume is a metric, not just a one-time warning; labelled
        # per ring so child-side IPC drops (ring="ipc", merged back with
        # a worker label) stay attributable instead of aggregated away
        self.events.drop_counter = self.registry.counter(
            "obs.events.dropped", {"ring": "events"}
        )
        # the flight recorder taps every event — even ones the bounded
        # log drops — into per-thread rings for post-mortem bundles
        self.flight = FlightRecorder(capacity_per_thread=flight_capacity)
        self.events.tap = self.flight.record
        self.tracer = SpanTracer(self.events, registry=self.registry, clock=clock)

    # ------------------------------------------------------------------
    # recording
    # ------------------------------------------------------------------
    def span(self, name: str, **attributes: object) -> Span:
        return self.tracer.span(name, **attributes)

    def activate(self, context: Optional[TraceContext]):
        """Adopt a cross-thread trace context (see ``SpanTracer.activate``)."""
        return self.tracer.activate(context)

    def trace_context(self) -> Optional[TraceContext]:
        """The context a cross-thread hop should carry right now."""
        return self.tracer.current_context()

    def counter(self, name: str, labels=None):
        return self.registry.counter(name, labels)

    def gauge(self, name: str, labels=None):
        return self.registry.gauge(name, labels)

    def histogram(self, name: str, labels=None, buckets=None):
        return self.registry.histogram(name, labels, buckets=buckets)

    def point(self, name: str, **fields: object) -> None:
        """Record a point (non-span) event at the current clock reading.

        When a span is open on this thread (or a cross-thread context is
        activated) the point is stamped with its ``trace_id``/``parent_id``
        so it lands inside the right causal tree.
        """
        context = self.tracer.current_context()
        if context is not None:
            fields.setdefault("trace_id", context.trace_id)
            if context.parent_span_id is not None:
                fields.setdefault("parent_id", context.parent_span_id)
        self.events.emit("point", name, ts=self.tracer.clock(), **fields)

    # ------------------------------------------------------------------
    # export
    # ------------------------------------------------------------------
    def snapshot(self) -> MetricsSnapshot:
        return self.registry.snapshot()

    def metrics_document(self) -> Dict[str, object]:
        """The metrics.json payload: schema tag + snapshot + event stats."""
        return {
            "schema_version": METRICS_SCHEMA_VERSION,
            "events": {"recorded": len(self.events), "dropped": self.events.dropped},
            "metrics": self.snapshot().as_dict(),
        }

    def export_dir(self, directory: str) -> Dict[str, str]:
        """Write events.jsonl + metrics.json + metrics.prom into a directory.

        Returns ``{kind: path}`` for reporting to the user.
        """
        os.makedirs(directory, exist_ok=True)
        paths = {
            "events": os.path.join(directory, EVENTS_FILENAME),
            "metrics": os.path.join(directory, METRICS_FILENAME),
            "prometheus": os.path.join(directory, PROMETHEUS_FILENAME),
        }
        self.events.export_jsonl(paths["events"])
        with open(paths["metrics"], "w") as handle:
            json.dump(self.metrics_document(), handle, indent=2, sort_keys=True)
            handle.write("\n")
        with open(paths["prometheus"], "w") as handle:
            handle.write(self.registry.to_prometheus())
        # flight bundles dumped before a directory was known land here too
        pending = [b for b in self.flight.bundles if b["path"] is None]
        if pending:
            flight_dir = os.path.join(directory, FLIGHT_DIRNAME)
            written = self.flight.flush(flight_dir)
            if written:
                paths["flight"] = flight_dir
        return paths


# ----------------------------------------------------------------------
# ambient default
# ----------------------------------------------------------------------
_GLOBAL: Optional[Telemetry] = None


def get_global_telemetry() -> Optional[Telemetry]:
    """The process-wide default telemetry (None when disabled)."""
    return _GLOBAL


def set_global_telemetry(telemetry: Optional[Telemetry]) -> Optional[Telemetry]:
    """Install (or clear, with None) the process default; returns the old."""
    global _GLOBAL
    previous = _GLOBAL
    _GLOBAL = telemetry
    return previous


@contextlib.contextmanager
def use_telemetry(telemetry: Telemetry) -> Iterator[Telemetry]:
    """Scoped installation of the process default (restores on exit)."""
    previous = set_global_telemetry(telemetry)
    try:
        yield telemetry
    finally:
        set_global_telemetry(previous)

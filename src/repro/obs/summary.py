"""Offline summaries of exported telemetry (the ``repro telemetry`` CLI).

Operates on the files written by :meth:`repro.obs.telemetry.Telemetry.export_dir`
— an ``events.jsonl`` span/event stream and a ``metrics.json`` snapshot —
after the process that produced them is gone, so everything here works
from the serialized form only.
"""

from __future__ import annotations

import json
import os
from typing import Dict, List, Optional, Sequence

from repro.obs.events import Event, load_jsonl
from repro.obs.telemetry import EVENTS_FILENAME, METRICS_FILENAME
from repro.obs.tracing import format_trace_table, trace_rows


def resolve_events_path(path: str) -> str:
    """Accept a telemetry directory or a .jsonl file path."""
    if os.path.isdir(path):
        return os.path.join(path, EVENTS_FILENAME)
    return path


def resolve_metrics_path(path: str) -> Optional[str]:
    """The metrics.json inside a telemetry directory (or the path itself)."""
    if os.path.isdir(path):
        candidate = os.path.join(path, METRICS_FILENAME)
        return candidate if os.path.exists(candidate) else None
    return path if path.endswith(".json") else None


def _exact_percentile(samples: List[float], q: float) -> float:
    ordered = sorted(samples)
    if not ordered:
        return float("nan")
    index = min(len(ordered) - 1, max(0, round(q * (len(ordered) - 1))))
    return ordered[index]


def span_rows(events: Sequence[Event]) -> List[Dict[str, object]]:
    """Per-span-name latency table from raw span events (exact percentiles)."""
    by_name: Dict[str, List[float]] = {}
    errors: Dict[str, int] = {}
    for event in events:
        if event.kind != "span":
            continue
        by_name.setdefault(event.name, []).append(float(event.fields["duration"]))
        if event.fields.get("status") == "error":
            errors[event.name] = errors.get(event.name, 0) + 1
    rows = []
    for name in sorted(by_name):
        samples = by_name[name]
        rows.append({
            "span": name,
            "count": len(samples),
            "errors": errors.get(name, 0),
            "total_s": sum(samples),
            "mean_s": sum(samples) / len(samples),
            "p50_s": _exact_percentile(samples, 0.50),
            "p95_s": _exact_percentile(samples, 0.95),
            "p99_s": _exact_percentile(samples, 0.99),
            "max_s": max(samples),
        })
    return rows


def format_span_table(rows: Sequence[Dict[str, object]]) -> str:
    """Fixed-width text rendering of :func:`span_rows`."""
    if not rows:
        return "(no span events)"
    header = f"{'span':<28}{'count':>7}{'err':>5}{'total':>10}{'p50':>10}{'p95':>10}{'p99':>10}{'max':>10}"
    lines = [header, "-" * len(header)]
    for row in rows:
        lines.append(
            f"{row['span']:<28}{row['count']:>7}{row['errors']:>5}"
            f"{row['total_s']:>10.4f}{row['p50_s']:>10.5f}{row['p95_s']:>10.5f}"
            f"{row['p99_s']:>10.5f}{row['max_s']:>10.5f}"
        )
    return "\n".join(lines)


def format_metrics_summary(document: Dict[str, object]) -> str:
    """Human summary of a metrics.json document (counters/gauges/histograms)."""
    lines: List[str] = []
    events = document.get("events", {})
    lines.append(
        f"events: {events.get('recorded', '?')} recorded, "
        f"{events.get('dropped', '?')} dropped "
        f"(schema v{document.get('schema_version', '?')})"
    )
    metrics: Dict[str, Dict[str, object]] = document.get("metrics", {})  # type: ignore[assignment]
    for name in sorted(metrics):
        metric = metrics[name]
        for series in metric["series"]:  # type: ignore[index]
            labels = ",".join(f"{k}={v}" for k, v in series["labels"])
            tag = f"{name}{{{labels}}}" if labels else name
            if metric["type"] == "histogram":
                if not series.get("count"):
                    lines.append(f"  {tag}: empty")
                    continue
                lines.append(
                    f"  {tag}: count={series['count']} sum={series['sum']:.6g} "
                    f"p50={series.get('p50', float('nan')):.6g} "
                    f"p95={series.get('p95', float('nan')):.6g} "
                    f"p99={series.get('p99', float('nan')):.6g}"
                )
            else:
                lines.append(f"  {tag}: {series['value']:g}")
    return "\n".join(lines)


def slowest_spans(
    events: Sequence[Event], top: int
) -> List[Dict[str, object]]:
    """The ``top`` individually slowest span instances (not per-name)."""
    spans = [e for e in events if e.kind == "span"]
    spans.sort(
        key=lambda e: -float(e.fields.get("duration", 0.0))
    )
    rows = []
    for event in spans[:top]:
        rows.append({
            "span": event.name,
            "duration_s": float(event.fields.get("duration", 0.0)),
            "trace": event.fields.get("trace_id", "-"),
            "span_id": event.fields.get("span_id", "-"),
            "thread": event.fields.get("thread", "-"),
            "status": event.fields.get("status", "ok"),
        })
    return rows


def format_slowest_table(rows: Sequence[Dict[str, object]]) -> str:
    """Fixed-width text rendering of :func:`slowest_spans`."""
    if not rows:
        return "(no span events)"
    header = (
        f"{'span':<28}{'duration':>12}{'trace':>10}{'span_id':>9}"
        f"{'status':>8}  thread"
    )
    lines = [header, "-" * len(header)]
    for row in rows:
        lines.append(
            f"{row['span']:<28}{row['duration_s']:>12.6f}{str(row['trace']):>10}"
            f"{str(row['span_id']):>9}{str(row['status']):>8}  {row['thread']}"
        )
    return "\n".join(lines)


def worker_rows(events: Sequence[Event]) -> List[Dict[str, object]]:
    """Per-worker span rollup (the ``--by-worker`` table).

    Spans merged from a process shard child carry ``worker``/``pid``
    fields; everything emitted in the parent process (ingest thread,
    thread-backend shard workers, supervisor) is grouped under
    ``parent``.  Each row reports span volume, errors, total busy time
    and the single slowest span with its trace id — the per-process
    picture a flat span table aggregates away.
    """
    groups: Dict[str, Dict[str, object]] = {}
    for event in events:
        if event.kind != "span":
            continue
        worker = str(event.fields.get("worker", "parent"))
        row = groups.get(worker)
        if row is None:
            row = groups[worker] = {
                "worker": worker,
                "pid": event.fields.get("pid", "-"),
                "spans": 0,
                "errors": 0,
                "total_s": 0.0,
                "slowest_s": 0.0,
                "slowest_span": "-",
                "slowest_trace": "-",
            }
        duration = float(event.fields.get("duration", 0.0))
        row["spans"] = int(row["spans"]) + 1
        row["total_s"] = float(row["total_s"]) + duration
        if event.fields.get("status") == "error":
            row["errors"] = int(row["errors"]) + 1
        if duration >= float(row["slowest_s"]):
            row["slowest_s"] = duration
            row["slowest_span"] = event.name
            row["slowest_trace"] = event.fields.get("trace_id", "-")
    return sorted(groups.values(), key=lambda r: str(r["worker"]))


def format_worker_table(rows: Sequence[Dict[str, object]]) -> str:
    """Fixed-width text rendering of :func:`worker_rows`."""
    if not rows:
        return "(no span events)"
    header = (
        f"{'worker':<12}{'pid':>8}{'spans':>7}{'err':>5}{'total':>10}"
        f"{'slowest':>12}  slowest span (trace)"
    )
    lines = [header, "-" * len(header)]
    for row in rows:
        lines.append(
            f"{row['worker']:<12}{str(row['pid']):>8}{row['spans']:>7}"
            f"{row['errors']:>5}{row['total_s']:>10.4f}"
            f"{row['slowest_s']:>12.6f}  {row['slowest_span']}"
            f" ({row['slowest_trace']})"
        )
    return "\n".join(lines)


def load_metrics_document(path: str) -> Dict[str, object]:
    """Parse a metrics.json export."""
    with open(path) as handle:
        return json.load(handle)


def summarize_path(path: str, top: int = 0, by_worker: bool = False) -> str:
    """Full text summary for ``repro telemetry summarize PATH``.

    With ``top > 0`` two extra sections are appended: the ``top``
    individually slowest span instances, and a per-trace duration rollup
    built from the causal trace ids stamped on every span.  With
    ``by_worker`` a per-worker/per-pid rollup is added — the
    cross-process view over spans merged from shard children.
    """
    sections: List[str] = []
    metrics_path = resolve_metrics_path(path)
    if metrics_path and os.path.exists(metrics_path):
        sections.append(format_metrics_summary(load_metrics_document(metrics_path)))
    events_path = resolve_events_path(path)
    if os.path.exists(events_path):
        events = load_jsonl(events_path)
        sections.append(f"spans ({events_path}):")
        sections.append(format_span_table(span_rows(events)))
        if by_worker:
            sections.append("workers:")
            sections.append(format_worker_table(worker_rows(events)))
        if top > 0:
            sections.append(f"slowest {top} spans:")
            sections.append(format_slowest_table(slowest_spans(events, top)))
            sections.append("traces:")
            sections.append(format_trace_table(trace_rows(events)))
    if not sections:
        return f"no telemetry found at {path}"
    return "\n".join(sections)

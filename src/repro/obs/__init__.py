"""Unified observability layer: metrics, spans, events, exports.

``repro.obs`` is the one instrumentation vocabulary shared by the software
engines, the resilience pipeline and the accelerator simulator:

* :mod:`repro.obs.metrics` — counters / gauges / fixed-bucket histograms in
  a labelled :class:`MetricsRegistry` with snapshot/diff and Prometheus
  text exposition;
* :mod:`repro.obs.spans` — nested :class:`Span` timing (context manager or
  decorator) feeding per-name latency histograms;
* :mod:`repro.obs.events` — the bounded :class:`EventLog` with JSONL
  export/import;
* :mod:`repro.obs.telemetry` — the :class:`Telemetry` facade bundling the
  three, plus the opt-in process-wide default used by the CLI;
* :mod:`repro.obs.bridge` — translators from the pre-existing counters
  (``OpCounts``, ``ResilienceCounters``, ``HwBatchStats``,
  ``TraceRecorder``) into registry metrics;
* :mod:`repro.obs.tracing` — cross-thread :class:`TraceContext`
  propagation plus offline trace reassembly and waterfall rendering;
* :mod:`repro.obs.provenance` — per-epoch contribution provenance
  (classification counts, sampled verdicts, key-path evolution) behind
  the ``explain`` query;
* :mod:`repro.obs.recorder` — the per-thread flight recorder dumped into
  post-mortem bundles on shard crash / chaos fault / strict-close failure.

See docs/observability.md for the metric catalog and span taxonomy, and
docs/tracing.md for the trace/provenance/flight-recorder model.
"""

from repro.obs.events import Event, EventLog, TelemetryDropWarning, load_jsonl
from repro.obs.metrics import (
    Counter,
    DEFAULT_COUNT_BUCKETS,
    DEFAULT_LATENCY_BUCKETS,
    Gauge,
    Histogram,
    MetricsRegistry,
    MetricsSnapshot,
)
from repro.obs.provenance import (
    GroupObservation,
    GroupRecord,
    KeyPathChange,
    ProvenanceRecorder,
)
from repro.obs.recorder import FlightRecorder
from repro.obs.spans import Span, SpanTracer
from repro.obs.telemetry import (
    Telemetry,
    get_global_telemetry,
    set_global_telemetry,
    use_telemetry,
)
from repro.obs.tracing import (
    Trace,
    TraceContext,
    build_traces,
    critical_path,
    render_waterfall,
)

__all__ = [
    "Counter",
    "DEFAULT_COUNT_BUCKETS",
    "DEFAULT_LATENCY_BUCKETS",
    "Event",
    "EventLog",
    "FlightRecorder",
    "Gauge",
    "GroupObservation",
    "GroupRecord",
    "Histogram",
    "KeyPathChange",
    "MetricsRegistry",
    "MetricsSnapshot",
    "ProvenanceRecorder",
    "Span",
    "SpanTracer",
    "Telemetry",
    "TelemetryDropWarning",
    "Trace",
    "TraceContext",
    "build_traces",
    "critical_path",
    "get_global_telemetry",
    "load_jsonl",
    "render_waterfall",
    "set_global_telemetry",
    "use_telemetry",
]

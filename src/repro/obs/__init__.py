"""Unified observability layer: metrics, spans, events, exports.

``repro.obs`` is the one instrumentation vocabulary shared by the software
engines, the resilience pipeline and the accelerator simulator:

* :mod:`repro.obs.metrics` — counters / gauges / fixed-bucket histograms in
  a labelled :class:`MetricsRegistry` with snapshot/diff and Prometheus
  text exposition;
* :mod:`repro.obs.spans` — nested :class:`Span` timing (context manager or
  decorator) feeding per-name latency histograms;
* :mod:`repro.obs.events` — the bounded :class:`EventLog` with JSONL
  export/import;
* :mod:`repro.obs.telemetry` — the :class:`Telemetry` facade bundling the
  three, plus the opt-in process-wide default used by the CLI;
* :mod:`repro.obs.bridge` — translators from the pre-existing counters
  (``OpCounts``, ``ResilienceCounters``, ``HwBatchStats``,
  ``TraceRecorder``) into registry metrics.

See docs/observability.md for the metric catalog and span taxonomy.
"""

from repro.obs.events import Event, EventLog, TelemetryDropWarning, load_jsonl
from repro.obs.metrics import (
    Counter,
    DEFAULT_COUNT_BUCKETS,
    DEFAULT_LATENCY_BUCKETS,
    Gauge,
    Histogram,
    MetricsRegistry,
    MetricsSnapshot,
)
from repro.obs.spans import Span, SpanTracer
from repro.obs.telemetry import (
    Telemetry,
    get_global_telemetry,
    set_global_telemetry,
    use_telemetry,
)

__all__ = [
    "Counter",
    "DEFAULT_COUNT_BUCKETS",
    "DEFAULT_LATENCY_BUCKETS",
    "Event",
    "EventLog",
    "Gauge",
    "Histogram",
    "MetricsRegistry",
    "MetricsSnapshot",
    "Span",
    "SpanTracer",
    "Telemetry",
    "TelemetryDropWarning",
    "get_global_telemetry",
    "load_jsonl",
    "set_global_telemetry",
    "use_telemetry",
]

"""Bridges from the existing instrumentation into the metrics registry.

The repo already counts things in three dialects — :class:`repro.metrics.OpCounts`
on the software engines, :class:`repro.metrics.ResilienceCounters` in the
fault-tolerance layer, and ``HwBatchStats``/:class:`repro.hw.trace.TraceRecorder`
in the simulator.  These functions translate each into registry metrics
under one naming scheme (see docs/observability.md for the catalog), so a
software run and a simulated run export in the same format.

Everything is duck-typed on ``as_dict()``/attributes so this module keeps
:mod:`repro.obs` free of imports from the rest of the package.
"""

from __future__ import annotations

from typing import Mapping, Optional

from repro.obs.metrics import DEFAULT_COUNT_BUCKETS, MetricsRegistry

#: classification tallies copied from ``BatchResult.stats`` into counters
CLASSIFICATION_KEYS = (
    "valuable_additions",
    "nondelayed_deletions",
    "delayed_deletions",
    "useless",
)

#: activation tallies copied from ``BatchResult.stats`` into counters
ACTIVATION_KEYS = (
    "activated_by_additions",
    "activated_by_deletions",
    "activated_by_deletions_response",
)


def record_op_counts(
    registry: MetricsRegistry, ops, engine: str, phase: str
) -> None:
    """``OpCounts`` -> ``engine_ops_total{engine,phase,op}`` counters."""
    for op, value in ops.as_dict().items():
        if value:
            registry.counter(
                "engine_ops_total", {"engine": engine, "phase": phase, "op": op}
            ).inc(value)


def record_batch_result(
    registry: MetricsRegistry,
    engine: str,
    result,
    duration: Optional[float] = None,
) -> None:
    """One ``BatchResult`` -> batch counters, tallies and latency.

    ``duration`` is the wall-clock seconds of ``on_batch`` (observed into
    ``engine_batch_seconds``); per-op work lands in ``engine_ops_total``
    split by response/post phase so registry totals reconcile exactly with
    ``BatchResult.total_ops``.
    """
    registry.counter("engine_batches_total", {"engine": engine}).inc()
    record_op_counts(registry, result.response_ops, engine, "response")
    record_op_counts(registry, result.post_ops, engine, "post")
    if duration is not None:
        registry.histogram("engine_batch_seconds", {"engine": engine}).observe(duration)
    stats: Mapping[str, float] = result.stats
    for key in CLASSIFICATION_KEYS:
        if key in stats:
            registry.counter(
                "engine_classified_total", {"engine": engine, "class": key}
            ).inc(stats[key])
    for key in ACTIVATION_KEYS:
        if key in stats:
            registry.counter(
                "engine_activations_total", {"engine": engine, "kind": key}
            ).inc(stats[key])
    registry.histogram(
        "engine_batch_relaxations",
        {"engine": engine},
        buckets=DEFAULT_COUNT_BUCKETS,
    ).observe(result.total_ops.relaxations)


def record_resilience_counters(registry: MetricsRegistry, counters) -> None:
    """``ResilienceCounters`` -> ``resilience_*`` gauges (cumulative levels).

    The source counters are cumulative already, so they map onto gauges
    set to the current level — calling this after every batch keeps the
    registry view consistent without double counting.
    """
    for name, value in counters.as_dict().items():
        registry.gauge(f"resilience_{name}").set(value)


def record_deadletters(registry: MetricsRegistry, deadletters) -> None:
    """``DeadLetterQueue`` -> per-reason quarantine gauges."""
    registry.gauge("deadletter_queued").set(len(deadletters))
    for reason, count in deadletters.summary().items():
        registry.gauge("deadletter_by_reason", {"reason": reason}).set(count)


def record_serve_state(
    registry: MetricsRegistry,
    shard_depths: Mapping[int, int],
    session_counts: Mapping[str, int],
    workers: Optional[Mapping[int, str]] = None,
) -> None:
    """Serve-layer occupancy -> per-shard depth and per-state session gauges.

    ``workers`` (shard index -> worker identity, e.g. ``shard-0``) adds a
    ``worker`` label to each depth series so the cross-process rollups
    (``telemetry summarize --by-worker``) can join queue depth against
    the ``worker``-stamped span events from the same shard.
    """
    for index, depth in shard_depths.items():
        labels = {"shard": str(index)}
        if workers is not None and index in workers:
            labels["worker"] = workers[index]
        registry.gauge("serve_queue_depth", labels).set(depth)
    for state, count in session_counts.items():
        registry.gauge("serve_sessions", {"state": state}).set(count)


def record_serve_admission(registry: MetricsRegistry, stats: Mapping) -> None:
    """``AdmissionController.stats()`` -> admission gauges.

    The controller's counts are cumulative, so (like
    :func:`record_resilience_counters`) they map onto gauges set to the
    current level — safe to call after every admission decision.
    """
    registry.gauge("serve_queue_bound").set(stats["queue_bound"])
    registry.gauge("serve_admitted_registrations").set(
        stats["admitted_registrations"]
    )
    registry.gauge("serve_admitted_batches").set(stats["admitted_batches"])
    registry.gauge("serve_admission_delays").set(stats["delays"])
    for reason, count in stats["rejections"].items():
        registry.gauge(
            "serve_admission_rejections", {"reason": reason}
        ).set(count)


def record_serve_cache(registry: MetricsRegistry, stats: Mapping) -> None:
    """``CacheStats.as_dict()`` -> ``serve_cache_*`` gauges."""
    for name, value in stats.items():
        registry.gauge(f"serve_cache_{name}").set(value)


#: breaker states encoded for the ``serve_breaker_state`` gauge
_BREAKER_STATE_CODES = {"closed": 0, "open": 1, "half-open": 2}


def record_supervision(registry: MetricsRegistry, stats: Mapping) -> None:
    """``Supervisor.stats()`` -> supervision gauges.

    Restart/resurrection/blocked/degraded-read counts are cumulative on
    the supervisor, so they map onto gauges set to the current level;
    each source's breaker exports its state (0 closed / 1 open / 2
    half-open) and trip count labelled by source.
    """
    registry.gauge("serve_supervisor_restarts").set(stats["shard_restarts"])
    registry.gauge("serve_supervisor_resurrections").set(
        stats["session_resurrections"]
    )
    registry.gauge("serve_supervisor_blocked").set(stats["blocked_rescues"])
    registry.gauge("serve_degraded_reads").set(stats["degraded_reads"])
    registry.gauge("serve_awaiting_rescue").set(stats["awaiting_rescue"])
    for source, breaker in stats["breakers"].items():
        labels = {"source": str(source)}
        registry.gauge("serve_breaker_state", labels).set(
            _BREAKER_STATE_CODES.get(breaker["state"], -1)
        )
        registry.gauge("serve_breaker_opens", labels).set(breaker["opens"])


def record_control_surface(
    registry: MetricsRegistry,
    surface: Mapping[str, float],
    groups: Mapping[int, int],
) -> None:
    """Adaptive-control inputs -> ``serve_control_*`` / per-shard gauges.

    ``surface`` holds the current knob values plus the derived SLO
    measurements (answer p99, served staleness high-water); ``groups``
    maps shard index -> source groups owned.  Recorded by the controller
    immediately before each snapshot so
    :meth:`repro.serve.control.ControlSignals.from_snapshot` sees a
    consistent picture.
    """
    for name, value in surface.items():
        registry.gauge(f"serve_control_{name}").set(value)
    for index, count in groups.items():
        registry.gauge("serve_shard_groups", {"shard": str(index)}).set(count)


def record_controller(registry: MetricsRegistry, stats: Mapping) -> None:
    """``RuntimeController.stats()`` -> controller health gauges.

    Decision/condition counts are cumulative on the controller, so they
    map onto gauges set to the current level (the same convention as
    :func:`record_supervision`).
    """
    registry.gauge("serve_controller_frozen").set(1 if stats["frozen"] else 0)
    registry.gauge("serve_controller_decisions").set(stats["decisions_total"])
    for condition, count in stats["conditions"].items():
        registry.gauge(
            "serve_controller_conditions", {"condition": condition}
        ).set(count)
    for knob, value in stats["knobs"].items():
        registry.gauge("serve_controller_knob", {"knob": knob}).set(value)


def record_answer_latency(
    registry: MetricsRegistry,
    session_id: str,
    latency: float,
    worker: Optional[str] = None,
) -> None:
    """One standing-query answer -> ``serve_answer_seconds{session}``.

    ``worker`` names the shard worker that produced the answer (stable
    ``shard-N`` identity on both backends), splitting answer latency per
    worker without changing the metric name.
    """
    labels = {"session": session_id}
    if worker is not None:
        labels["worker"] = worker
    registry.histogram("serve_answer_seconds", labels).observe(latency)


def record_hw_stats(registry: MetricsRegistry, stats) -> None:
    """``HwBatchStats`` -> ``hw_*`` cycle counters and occupancy gauges."""
    for attr in ("identify_cycles", "response_cycles", "total_cycles"):
        registry.counter("hw_cycles_total", {"window": attr.replace("_cycles", "")}).inc(
            getattr(stats, attr)
        )
        registry.histogram(
            "hw_batch_cycles",
            {"window": attr.replace("_cycles", "")},
            buckets=DEFAULT_COUNT_BUCKETS,
        ).observe(getattr(stats, attr))
    for attr in ("relaxations", "activations", "repairs", "promoted"):
        registry.counter("hw_work_total", {"kind": attr}).inc(getattr(stats, attr))
    registry.gauge("hw_buffer_peak").set(stats.buffer_peak)
    registry.gauge("hw_spm_hit_rate").set(stats.spm.hit_rate)
    registry.gauge("hw_dram_row_hit_rate").set(stats.dram.row_hit_rate)
    for name, prefetch in (
        ("state", stats.state_prefetch),
        ("neighbor", stats.neighbor_prefetch),
    ):
        labels = {"prefetcher": name}
        registry.counter("hw_prefetch_requests_total", labels).inc(prefetch.requests)
        registry.counter("hw_prefetch_bytes_total", labels).inc(prefetch.bytes_requested)
        registry.counter("hw_prefetch_stall_cycles_total", labels).inc(
            prefetch.stall_cycles
        )


def record_trace_recorder(registry: MetricsRegistry, tracer) -> None:
    """``TraceRecorder`` occupancy -> gauges (incl. the ``dropped`` count)."""
    registry.gauge("hw_trace_records").set(len(tracer))
    registry.gauge("hw_trace_dropped").set(tracer.dropped)
    registry.gauge("hw_trace_capacity").set(tracer.capacity)

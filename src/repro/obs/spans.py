"""Structured spans: timed, nested regions of work.

A :class:`Span` measures one region on the monotonic clock and carries a
``span_id``/``parent_id`` pair so nested regions reconstruct into a tree
(``engine.batch`` > ``engine.classify`` > ...).  Spans are produced by a
:class:`SpanTracer` — as a context manager or a decorator — and on close
are emitted into an :class:`~repro.obs.events.EventLog` and observed into a
``span_seconds`` histogram in the owning registry, which is how per-batch
latency percentiles (p50/p95/p99) fall out of normal tracing.

Exception safety: a span closed by an exception records
``status="error"`` plus the exception type and re-raises; the tracer's
open-span stack is always unwound.
"""

from __future__ import annotations

import functools
import itertools
import time
from typing import Callable, Dict, Optional

from repro.obs.events import EventLog
from repro.obs.metrics import DEFAULT_LATENCY_BUCKETS, MetricsRegistry


class Span:
    """One timed region; use through :meth:`SpanTracer.span`."""

    __slots__ = (
        "name", "span_id", "parent_id", "start", "end", "status",
        "error", "attributes", "_tracer",
    )

    def __init__(
        self,
        tracer: "SpanTracer",
        name: str,
        span_id: int,
        parent_id: Optional[int],
        attributes: Dict[str, object],
    ) -> None:
        self._tracer = tracer
        self.name = name
        self.span_id = span_id
        self.parent_id = parent_id
        self.attributes = attributes
        self.start = 0.0
        self.end: Optional[float] = None
        self.status = "ok"
        self.error: Optional[str] = None

    # ------------------------------------------------------------------
    @property
    def duration(self) -> float:
        if self.end is None:
            raise RuntimeError(f"span {self.name!r} still open")
        return self.end - self.start

    def set(self, **attributes: object) -> "Span":
        """Attach attributes to the span (merged into the emitted event)."""
        self.attributes.update(attributes)
        return self

    # ------------------------------------------------------------------
    def __enter__(self) -> "Span":
        self.start = self._tracer.clock()
        self._tracer._opened(self)
        return self

    def __exit__(self, exc_type, exc, tb) -> None:
        self.end = self._tracer.clock()
        if exc_type is not None:
            self.status = "error"
            self.error = exc_type.__name__
        self._tracer._closed(self)
        # never swallow: telemetry observes, it does not alter control flow


class SpanTracer:
    """Factory and sink for spans.

    The tracer keeps a stack of open spans to assign ``parent_id``
    automatically; ids are unique per tracer.  All closed spans are
    emitted to ``events`` (kind ``span``) and, when a registry is
    attached, observed into the ``span_seconds`` histogram labelled by
    span name.
    """

    def __init__(
        self,
        events: EventLog,
        registry: Optional[MetricsRegistry] = None,
        clock: Callable[[], float] = time.perf_counter,
    ) -> None:
        self.events = events
        self.registry = registry
        self.clock = clock
        self._ids = itertools.count(1)
        self._stack: list = []

    # ------------------------------------------------------------------
    def span(self, name: str, **attributes: object) -> Span:
        parent = self._stack[-1].span_id if self._stack else None
        return Span(self, name, next(self._ids), parent, dict(attributes))

    def traced(self, name: Optional[str] = None) -> Callable:
        """Decorator: run the function inside a span named after it."""

        def decorate(fn: Callable) -> Callable:
            span_name = name or fn.__qualname__

            @functools.wraps(fn)
            def wrapper(*args, **kwargs):
                with self.span(span_name):
                    return fn(*args, **kwargs)

            return wrapper

        return decorate

    @property
    def depth(self) -> int:
        """Number of currently open spans (0 outside any span)."""
        return len(self._stack)

    # ------------------------------------------------------------------
    def _opened(self, span: Span) -> None:
        self._stack.append(span)

    def _closed(self, span: Span) -> None:
        # unwind to (and including) this span even if inner spans leaked —
        # an open child must not survive its parent's exit
        while self._stack:
            if self._stack.pop() is span:
                break
        fields: Dict[str, object] = {
            "span_id": span.span_id,
            "parent_id": span.parent_id,
            "duration": span.duration,
            "status": span.status,
        }
        if span.error is not None:
            fields["error"] = span.error
        fields.update(span.attributes)
        self.events.emit("span", span.name, ts=span.start, **fields)
        if self.registry is not None:
            self.registry.histogram(
                "span_seconds",
                labels={"span": span.name},
                buckets=DEFAULT_LATENCY_BUCKETS,
            ).observe(span.duration)

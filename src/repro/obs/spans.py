"""Structured spans: timed, nested regions of work.

A :class:`Span` measures one region on the monotonic clock and carries a
``span_id``/``parent_id`` pair so nested regions reconstruct into a tree
(``engine.batch`` > ``engine.classify`` > ...), plus a ``trace_id``
naming the causal tree it belongs to (see :mod:`repro.obs.tracing`).
Spans are produced by a :class:`SpanTracer` — as a context manager or a
decorator — and on close are emitted into an
:class:`~repro.obs.events.EventLog` and observed into a ``span_seconds``
histogram in the owning registry, which is how per-batch latency
percentiles (p50/p95/p99) fall out of normal tracing.

Thread safety: the open-span stack is **thread-local** — N shard workers
can nest spans concurrently without corrupting each other's parent links.
A root span (nothing open on its thread, no activated context) mints a
fresh ``trace_id``; :meth:`SpanTracer.activate` installs a
:class:`~repro.obs.tracing.TraceContext` carried across a thread boundary
so the receiving thread's spans parent onto the sending thread's span.

Exception safety: a span closed by an exception records
``status="error"`` plus the exception type and re-raises; the tracer's
open-span stack is always unwound.
"""

from __future__ import annotations

import contextlib
import functools
import itertools
import threading
import time
from typing import Callable, Dict, Iterator, Optional

from repro.obs.events import EventLog
from repro.obs.metrics import DEFAULT_LATENCY_BUCKETS, MetricsRegistry
from repro.obs.tracing import TraceContext


class Span:
    """One timed region; use through :meth:`SpanTracer.span`."""

    __slots__ = (
        "name", "span_id", "parent_id", "trace_id", "start", "end",
        "status", "error", "attributes", "_tracer",
    )

    def __init__(
        self,
        tracer: "SpanTracer",
        name: str,
        span_id: int,
        parent_id: Optional[int],
        trace_id: str,
        attributes: Dict[str, object],
    ) -> None:
        self._tracer = tracer
        self.name = name
        self.span_id = span_id
        self.parent_id = parent_id
        self.trace_id = trace_id
        self.attributes = attributes
        self.start = 0.0
        self.end: Optional[float] = None
        self.status = "ok"
        self.error: Optional[str] = None

    # ------------------------------------------------------------------
    @property
    def duration(self) -> float:
        if self.end is None:
            raise RuntimeError(f"span {self.name!r} still open")
        return self.end - self.start

    def set(self, **attributes: object) -> "Span":
        """Attach attributes to the span (merged into the emitted event)."""
        self.attributes.update(attributes)
        return self

    def context(self) -> TraceContext:
        """This span as a cross-thread hop: parent your spans onto me."""
        return TraceContext(trace_id=self.trace_id, parent_span_id=self.span_id)

    # ------------------------------------------------------------------
    def __enter__(self) -> "Span":
        self.start = self._tracer.clock()
        self._tracer._opened(self)
        return self

    def __exit__(self, exc_type, exc, tb) -> None:
        self.end = self._tracer.clock()
        if exc_type is not None:
            self.status = "error"
            self.error = exc_type.__name__
        self._tracer._closed(self)
        # never swallow: telemetry observes, it does not alter control flow


class SpanTracer:
    """Factory and sink for spans.

    The tracer keeps a *thread-local* stack of open spans to assign
    ``parent_id``/``trace_id`` automatically; ids are unique per tracer
    across all threads.  All closed spans are emitted to ``events`` (kind
    ``span``, with the emitting thread's name) and, when a registry is
    attached, observed into the ``span_seconds`` histogram labelled by
    span name.
    """

    def __init__(
        self,
        events: EventLog,
        registry: Optional[MetricsRegistry] = None,
        clock: Callable[[], float] = time.perf_counter,
    ) -> None:
        self.events = events
        self.registry = registry
        self.clock = clock
        # next(count) is a single C call under the GIL — atomic across
        # threads, so span ids never collide without a lock
        self._ids = itertools.count(1)
        self._local = threading.local()

    # ------------------------------------------------------------------
    def _stack(self) -> list:
        """This thread's open-span stack (created on first use)."""
        stack = getattr(self._local, "stack", None)
        if stack is None:
            stack = self._local.stack = []
        return stack

    def _contexts(self) -> list:
        """This thread's stack of activated cross-thread contexts."""
        contexts = getattr(self._local, "contexts", None)
        if contexts is None:
            contexts = self._local.contexts = []
        return contexts

    # ------------------------------------------------------------------
    def span(self, name: str, **attributes: object) -> Span:
        stack = self._stack()
        if stack:
            top = stack[-1]
            parent: Optional[int] = top.span_id
            trace: Optional[str] = top.trace_id
        else:
            contexts = self._contexts()
            if contexts:
                parent = contexts[-1].parent_span_id
                trace = contexts[-1].trace_id
            else:
                parent = None
                trace = None
        span_id = next(self._ids)
        if trace is None:
            trace = f"t{span_id:06d}"  # a root span names its own trace
        return Span(self, name, span_id, parent, trace, dict(attributes))

    @contextlib.contextmanager
    def activate(self, context: Optional[TraceContext]) -> Iterator[None]:
        """Adopt a cross-thread :class:`TraceContext` for the duration.

        Spans opened inside (with nothing already open on this thread)
        parent onto ``context.parent_span_id`` and join its trace instead
        of minting a new one.  ``None`` is a no-op, so call sites can pass
        a possibly-absent context straight through.
        """
        if context is None:
            yield
            return
        contexts = self._contexts()
        contexts.append(context)
        try:
            yield
        finally:
            contexts.pop()

    def current_context(self) -> Optional[TraceContext]:
        """The context a cross-thread hop should carry right now.

        The innermost open span on this thread wins; otherwise the
        innermost activated context; otherwise None (nothing to join).
        """
        stack = self._stack()
        if stack:
            return stack[-1].context()
        contexts = self._contexts()
        return contexts[-1] if contexts else None

    def traced(self, name: Optional[str] = None) -> Callable:
        """Decorator: run the function inside a span named after it."""

        def decorate(fn: Callable) -> Callable:
            span_name = name or fn.__qualname__

            @functools.wraps(fn)
            def wrapper(*args, **kwargs):
                with self.span(span_name):
                    return fn(*args, **kwargs)

            return wrapper

        return decorate

    @property
    def depth(self) -> int:
        """Open spans on the *calling* thread (0 outside any span)."""
        return len(self._stack())

    # ------------------------------------------------------------------
    def _opened(self, span: Span) -> None:
        self._stack().append(span)

    def _closed(self, span: Span) -> None:
        # unwind to (and including) this span even if inner spans leaked —
        # an open child must not survive its parent's exit
        stack = self._stack()
        while stack:
            if stack.pop() is span:
                break
        fields: Dict[str, object] = {
            "span_id": span.span_id,
            "parent_id": span.parent_id,
            "trace_id": span.trace_id,
            "thread": threading.current_thread().name,
            "duration": span.duration,
            "status": span.status,
        }
        if span.error is not None:
            fields["error"] = span.error
        fields.update(span.attributes)
        self.events.emit("span", span.name, ts=span.start, **fields)
        if self.registry is not None:
            self.registry.histogram(
                "span_seconds",
                labels={"span": span.name},
                buckets=DEFAULT_LATENCY_BUCKETS,
            ).observe(span.duration)

"""The flight recorder: bounded per-thread event rings + crash bundles.

A post-mortem wants the *last* few hundred events around the failure, per
thread, even when the main :class:`~repro.obs.events.EventLog` filled up
hours ago — so the recorder taps every emitted event into a bounded
``deque`` keyed by the emitting thread.  Appends are lock-free-ish: each
thread owns its ring, ``deque.append`` is atomic under the GIL, and the
only lock guards ring *creation* (first event from a new thread).

:meth:`FlightRecorder.dump` freezes the rings into a bundle — merged,
time-sorted, with the emitting thread attached to every record — plus the
caller's context (supervisor stats, failed shards, chaos verdicts...).
With a ``directory`` configured the bundle lands on disk immediately as
``flight/NNN-<reason>/{events.jsonl,context.json}``; without one it is
kept in memory (``bundles``) and flushed by
:meth:`~repro.obs.telemetry.Telemetry.export_dir`.  Dump triggers are
wired in :class:`~repro.serve.supervision.Supervisor` (shard crash),
:func:`~repro.resilience.chaos.run_chaos` (chaos faults / end of run) and
:meth:`~repro.serve.engine.ShardedServeEngine.close` (strict-close
failure).
"""

from __future__ import annotations

import itertools
import json
import os
import re
import threading
from collections import deque
from typing import Deque, Dict, List, Optional, Tuple

from repro.obs.events import Event

#: bundle filenames
BUNDLE_EVENTS = "events.jsonl"
BUNDLE_CONTEXT = "context.json"


def _slug(reason: str) -> str:
    return re.sub(r"[^A-Za-z0-9_-]+", "-", reason).strip("-") or "dump"


class FlightRecorder:
    """Per-thread bounded rings of recent events, dumpable on demand."""

    def __init__(
        self,
        capacity_per_thread: int = 512,
        directory: Optional[str] = None,
    ) -> None:
        if capacity_per_thread <= 0:
            raise ValueError("capacity_per_thread must be positive")
        self.capacity = capacity_per_thread
        #: where bundles are written; None keeps them in memory until
        #: :meth:`flush` (the CLI sets this to ``<telemetry>/flight``)
        self.directory = directory
        self._rings: Dict[str, Deque[Event]] = {}
        self._lock = threading.Lock()
        self._seq = itertools.count(1)
        #: every bundle ever dumped (with ``path`` None until written)
        self.bundles: List[Dict[str, object]] = []

    # ------------------------------------------------------------------
    # hot path (EventLog tap)
    # ------------------------------------------------------------------
    def record(self, event: Event) -> None:
        name = threading.current_thread().name
        ring = self._rings.get(name)
        if ring is None:
            with self._lock:
                ring = self._rings.setdefault(
                    name, deque(maxlen=self.capacity)
                )
        ring.append(event)

    # ------------------------------------------------------------------
    # inspection / dumping
    # ------------------------------------------------------------------
    @property
    def threads(self) -> List[str]:
        with self._lock:
            return sorted(self._rings)

    def snapshot(self) -> List[Dict[str, object]]:
        """All rings merged into one time-sorted list of event dicts."""
        with self._lock:
            frozen: List[Tuple[str, List[Event]]] = [
                (name, list(ring)) for name, ring in self._rings.items()
            ]
        rows: List[Dict[str, object]] = []
        for name, events in frozen:
            for event in events:
                row = event.as_dict()
                row.setdefault("thread", name)
                rows.append(row)
        rows.sort(key=lambda row: row["ts"])
        return rows

    def dump(
        self, reason: str, context: Optional[Dict[str, object]] = None
    ) -> Optional[str]:
        """Freeze the rings into a post-mortem bundle.

        Returns the bundle directory path when :attr:`directory` is set,
        None otherwise (the bundle stays in :attr:`bundles` for a later
        :meth:`flush`).
        """
        with self._lock:
            seq = next(self._seq)
        bundle: Dict[str, object] = {
            "seq": seq,
            "reason": reason,
            "context": dict(context or {}),
            "events": self.snapshot(),
            "path": None,
        }
        self.bundles.append(bundle)
        if self.directory is not None:
            return self._write(bundle, self.directory)
        return None

    def flush(self, directory: str) -> List[str]:
        """Write every not-yet-written bundle under ``directory``."""
        written = []
        for bundle in self.bundles:
            if bundle["path"] is None:
                written.append(self._write(bundle, directory))
        return written

    def _write(self, bundle: Dict[str, object], directory: str) -> str:
        path = os.path.join(
            directory, f"{bundle['seq']:03d}-{_slug(str(bundle['reason']))}"
        )
        os.makedirs(path, exist_ok=True)
        with open(os.path.join(path, BUNDLE_EVENTS), "w") as handle:
            for row in bundle["events"]:  # type: ignore[union-attr]
                handle.write(json.dumps(row, sort_keys=True))
                handle.write("\n")
        with open(os.path.join(path, BUNDLE_CONTEXT), "w") as handle:
            json.dump(
                {
                    "seq": bundle["seq"],
                    "reason": bundle["reason"],
                    "events": len(bundle["events"]),  # type: ignore[arg-type]
                    "context": bundle["context"],
                },
                handle, indent=2, sort_keys=True, default=str,
            )
            handle.write("\n")
        bundle["path"] = path
        return path

    def __repr__(self) -> str:
        return (
            f"FlightRecorder(threads={len(self._rings)}, "
            f"capacity={self.capacity}, bundles={len(self.bundles)})"
        )

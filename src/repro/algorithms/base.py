"""Monotonic pairwise algorithm interface.

Table II of the paper characterises each algorithm by two operators applied
to an edge ``u --w--> v``::

    T = (+)(u.state, w)          # "propagate": candidate state for v via u
    v.state = (x)(T, v.state)    # "combine":   keep the better of the two

together with an *identity* (the state of an unreached vertex) and a
*source* state.  All five algorithms are monotonic: (+) never produces a
value better than ``u.state`` itself, and (x) selects an extreme value, so
states only ever move in one direction during propagation.  Those two facts
make generalized Dijkstra, incremental propagation, and the paper's
triangle-inequality update classification correct for every algorithm
behind this interface.
"""

from __future__ import annotations

import abc
from typing import Iterable, List


class MonotonicAlgorithm(abc.ABC):
    """Semiring-style description of a monotonic pairwise algorithm.

    Subclasses define the four elements (identity, source state, propagate,
    ordering); shared logic (combine, contribution tests, state comparisons)
    lives here.  Implementations must be *pure*: no instance state may change
    during queries, so one algorithm object can serve many engines at once.
    """

    #: short name used by the registry and result tables
    name: str = "abstract"
    #: human-readable description for documentation tables
    description: str = ""
    #: True when better == numerically smaller (PPSP, PPNP)
    minimizing: bool = False

    # ------------------------------------------------------------------
    # the semiring
    # ------------------------------------------------------------------
    @abc.abstractmethod
    def identity(self) -> float:
        """State of an unreached vertex (the worst possible value)."""

    @abc.abstractmethod
    def source_state(self) -> float:
        """Initial state of the query source (the best possible value)."""

    @abc.abstractmethod
    def propagate(self, u_state: float, weight: float) -> float:
        """The (+) operator: candidate state for ``v`` given ``u``'s state.

        ``weight`` is the *transformed* weight (see :meth:`transform_weight`).
        """

    @abc.abstractmethod
    def is_better(self, a: float, b: float) -> bool:
        """Strict ordering: ``True`` iff state ``a`` beats state ``b``."""

    # ------------------------------------------------------------------
    # derived operations
    # ------------------------------------------------------------------
    def combine(self, a: float, b: float) -> float:
        """The (x) operator: the better of two states."""
        return a if self.is_better(a, b) else b

    def transform_weight(self, raw_weight: float) -> float:
        """Map a raw dataset weight into this algorithm's weight domain.

        Datasets carry positive integer weights; most algorithms use them
        directly.  Viterbi overrides this to map weights into probabilities.
        """
        return raw_weight

    def relax(self, u_state: float, raw_weight: float, v_state: float) -> float:
        """One full edge relaxation: ``(x)((+)(u, w), v)`` on a raw weight."""
        return self.combine(
            self.propagate(u_state, self.transform_weight(raw_weight)), v_state
        )

    def improves(self, u_state: float, raw_weight: float, v_state: float) -> bool:
        """Would edge ``u --w--> v`` strictly improve ``v``'s state?

        This is the triangle-inequality test the paper uses to classify edge
        *additions* as valuable (Algorithm 1, line 4).
        """
        return self.is_better(
            self.propagate(u_state, self.transform_weight(raw_weight)), v_state
        )

    def supplies(self, u_state: float, raw_weight: float, v_state: float) -> bool:
        """Does edge ``u --w--> v`` (exactly) supply ``v``'s converged state?

        This is the equality test classifying edge *deletions* as valuable
        (Algorithm 1, line 11): if the edge's candidate equals ``v``'s state,
        removing the edge may invalidate that state.
        """
        return (
            self.propagate(u_state, self.transform_weight(raw_weight)) == v_state
        )

    def is_reached(self, state: float) -> bool:
        """``True`` when a state is better than the identity (vertex reached)."""
        return self.is_better(state, self.identity())

    def initial_states(self, num_vertices: int, source: int) -> List[float]:
        """Fresh state array: identity everywhere, source state at ``source``."""
        states = [self.identity()] * num_vertices
        states[source] = self.source_state()
        return states

    # ------------------------------------------------------------------
    # documentation helpers (Table II reproduction)
    # ------------------------------------------------------------------
    #: string form of the (+) operator as printed in Table II
    plus_formula: str = ""
    #: string form of the (x) operator as printed in Table II
    times_formula: str = ""

    def __repr__(self) -> str:
        return f"{type(self).__name__}()"

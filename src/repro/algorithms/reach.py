"""Point-to-Point Reachability (Reach)."""

from __future__ import annotations

from repro.algorithms.base import MonotonicAlgorithm


class Reach(MonotonicAlgorithm):
    """Breadth-first reachability from source to destination.

    Table II: ``T = u.state``; ``v.state = MAX(T, v.state)``.
    States are ``1.0`` (reachable from the source) or ``0.0`` (not, the
    identity); edge weights are ignored.
    """

    name = "reach"
    description = "Point-to-Point Reachability"
    minimizing = False
    plus_formula = "T = u.state"
    times_formula = "MAX(T, v.state)"

    def identity(self) -> float:
        return 0.0

    def source_state(self) -> float:
        return 1.0

    def propagate(self, u_state: float, weight: float) -> float:
        return u_state

    def is_better(self, a: float, b: float) -> bool:
        return a > b

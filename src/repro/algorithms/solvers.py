"""Reference solvers for the monotonic algorithms.

Two independent full-computation solvers are provided:

* :func:`dijkstra` — generalized best-first search.  Valid for every
  algorithm behind :class:`~repro.algorithms.base.MonotonicAlgorithm`
  because ``(+)`` is non-improving (a candidate is never better than the
  state it extends), the same property that makes Dijkstra correct for
  non-negative shortest paths.  Used by the Cold-Start baseline and for
  converged state arrays.
* :func:`worklist_fixpoint` — chaotic-iteration (Bellman-Ford style)
  propagation to a fixpoint.  Slower, but structurally different, so the
  tests can cross-check the two against each other.
"""

from __future__ import annotations

import heapq
import itertools
from dataclasses import dataclass, field
from typing import List, Optional

from repro.algorithms.base import MonotonicAlgorithm
from repro.graph.dynamic import DynamicGraph
from repro.metrics import OpCounts


@dataclass
class SolveResult:
    """Converged states and dependence parents from a full computation.

    ``parents[v]`` is the in-neighbor that supplied ``v``'s state (-1 for
    the source and unreached vertices) — the dependence tree incremental
    engines need for safe deletion repair.
    """

    states: List[float]
    parents: List[int]
    ops: OpCounts = field(default_factory=OpCounts)

    def answer(self, destination: int) -> float:
        return self.states[destination]


def dijkstra(
    graph: DynamicGraph,
    algorithm: MonotonicAlgorithm,
    source: int,
    destination: Optional[int] = None,
    early_exit: bool = False,
) -> SolveResult:
    """Generalized best-first full computation from ``source``.

    With ``early_exit`` the search stops once ``destination`` is settled
    (the pairwise shortcut available to a cold-start system); otherwise it
    converges the whole reachable component.
    """
    n = graph.num_vertices
    states = algorithm.initial_states(n, source)
    parents = [-1] * n
    settled = [False] * n
    ops = OpCounts()

    better = algorithm.is_better
    propagate = algorithm.propagate
    transform = algorithm.transform_weight

    sign = 1.0 if algorithm.minimizing else -1.0
    counter = itertools.count()
    heap = [(sign * states[source], next(counter), source)]
    ops.heap_ops += 1

    while heap:
        key, _, u = heapq.heappop(heap)
        ops.heap_ops += 1
        if settled[u]:
            continue
        settled[u] = True
        if early_exit and u == destination:
            break
        du = states[u]
        ops.state_reads += 1
        for v, w in graph.out_neighbors(u):
            ops.edges_scanned += 1
            candidate = propagate(du, transform(w))
            ops.relaxations += 1
            ops.state_reads += 1
            if better(candidate, states[v]):
                states[v] = candidate
                parents[v] = u
                ops.state_writes += 1
                heapq.heappush(heap, (sign * candidate, next(counter), v))
                ops.heap_ops += 1
                ops.activations += 1
    return SolveResult(states=states, parents=parents, ops=ops)


def worklist_fixpoint(
    graph: DynamicGraph,
    algorithm: MonotonicAlgorithm,
    source: int,
) -> SolveResult:
    """Chaotic-iteration fixpoint solver (test oracle).

    FIFO worklist propagation until no state changes.  Termination follows
    from monotonicity: each vertex state only moves toward the extreme and
    the set of attainable values along simple paths is finite.
    """
    from collections import deque

    n = graph.num_vertices
    states = algorithm.initial_states(n, source)
    parents = [-1] * n
    ops = OpCounts()

    better = algorithm.is_better
    propagate = algorithm.propagate
    transform = algorithm.transform_weight

    queue = deque([source])
    in_queue = [False] * n
    in_queue[source] = True
    while queue:
        u = queue.popleft()
        in_queue[u] = False
        du = states[u]
        ops.state_reads += 1
        for v, w in graph.out_neighbors(u):
            ops.edges_scanned += 1
            candidate = propagate(du, transform(w))
            ops.relaxations += 1
            if better(candidate, states[v]):
                states[v] = candidate
                parents[v] = u
                ops.state_writes += 1
                ops.activations += 1
                if not in_queue[v]:
                    in_queue[v] = True
                    queue.append(v)
    return SolveResult(states=states, parents=parents, ops=ops)


def recompute_vertex(
    graph: DynamicGraph,
    algorithm: MonotonicAlgorithm,
    states: List[float],
    vertex: int,
    source: int,
    exclude=None,
    ops: Optional[OpCounts] = None,
) -> tuple:
    """Best state for ``vertex`` derivable from its current in-neighbors.

    Returns ``(state, parent)``.  ``exclude`` is an optional set/predicate
    container of vertices whose states may not be used as suppliers (during
    deletion repair, the reset subtree must not feed itself).  The source
    always keeps its source state.
    """
    if vertex == source:
        return algorithm.source_state(), -1
    best = algorithm.identity()
    parent = -1
    better = algorithm.is_better
    propagate = algorithm.propagate
    transform = algorithm.transform_weight
    for u, w in graph.in_neighbors(vertex):
        if exclude is not None and u in exclude:
            continue
        if ops is not None:
            ops.edges_scanned += 1
            ops.relaxations += 1
            ops.state_reads += 1
        candidate = propagate(states[u], transform(w))
        if better(candidate, best):
            best = candidate
            parent = u
    return best, parent

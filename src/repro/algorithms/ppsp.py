"""Point-to-Point Shortest Path (PPSP)."""

from __future__ import annotations

import math

from repro.algorithms.base import MonotonicAlgorithm


class PPSP(MonotonicAlgorithm):
    """Shortest additive distance from source to destination.

    Table II: ``T = u.state + w``; ``v.state = MIN(T, v.state)``.
    Identity is ``+inf`` (unreached), source starts at ``0``.
    """

    name = "ppsp"
    description = "Point-to-Point Shortest Path"
    minimizing = True
    plus_formula = "T = u.state + w"
    times_formula = "MIN(T, v.state)"

    def identity(self) -> float:
        return math.inf

    def source_state(self) -> float:
        return 0.0

    def propagate(self, u_state: float, weight: float) -> float:
        return u_state + weight

    def is_better(self, a: float, b: float) -> bool:
        return a < b

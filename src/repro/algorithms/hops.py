"""Point-to-Point Hop Count (extension algorithm).

Not part of the paper's Table II, but a natural sixth monotonic member:
the minimum number of edges between source and destination (unweighted
BFS distance).  Included to demonstrate that the engines and the
accelerator are generic over the :class:`MonotonicAlgorithm` contract —
see :func:`repro.algorithms.register_algorithm`.
"""

from __future__ import annotations

import math

from repro.algorithms.base import MonotonicAlgorithm


class HopCount(MonotonicAlgorithm):
    """Fewest-hops path; weights are ignored.

    ``T = u.state + 1``; ``v.state = MIN(T, v.state)``.
    """

    name = "hops"
    description = "Point-to-Point Hop Count"
    minimizing = True
    plus_formula = "T = u.state + 1"
    times_formula = "MIN(T, v.state)"

    def identity(self) -> float:
        return math.inf

    def source_state(self) -> float:
        return 0.0

    def propagate(self, u_state: float, weight: float) -> float:
        return u_state + 1.0

    def is_better(self, a: float, b: float) -> bool:
        return a < b

"""Point-to-Point Widest Path (PPWP)."""

from __future__ import annotations

import math

from repro.algorithms.base import MonotonicAlgorithm


class PPWP(MonotonicAlgorithm):
    """Maximum-bottleneck (widest) path from source to destination.

    Table II: ``T = min(u.state, w)``; ``v.state = MAX(T, v.state)``.
    The width of a path is its narrowest edge; the query wants the widest
    such path.  Identity is ``0`` (no path has zero capacity since weights
    are positive); the source has unbounded capacity to itself (``+inf``).
    """

    name = "ppwp"
    description = "Point-to-Point Widest Path"
    minimizing = False
    plus_formula = "T = min(u.state, w)"
    times_formula = "MAX(T, v.state)"

    def identity(self) -> float:
        return 0.0

    def source_state(self) -> float:
        return math.inf

    def propagate(self, u_state: float, weight: float) -> float:
        return u_state if u_state < weight else weight

    def is_better(self, a: float, b: float) -> bool:
        return a > b

"""Point-to-Point Narrowest Path (PPNP)."""

from __future__ import annotations

import math

from repro.algorithms.base import MonotonicAlgorithm


class PPNP(MonotonicAlgorithm):
    """Minimax (narrowest) path: minimise the largest edge on the path.

    Table II: ``T = max(u.state, w)``; ``v.state = MIN(T, v.state)``.
    Identity is ``+inf`` (unreached); the source's own bottleneck is
    ``-inf`` so the first edge's weight dominates.
    """

    name = "ppnp"
    description = "Point-to-Point Narrowest Path"
    minimizing = True
    plus_formula = "T = max(u.state, w)"
    times_formula = "MIN(T, v.state)"

    def identity(self) -> float:
        return math.inf

    def source_state(self) -> float:
        return -math.inf

    def propagate(self, u_state: float, weight: float) -> float:
        return u_state if u_state > weight else weight

    def is_better(self, a: float, b: float) -> bool:
        return a < b

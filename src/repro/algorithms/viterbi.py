"""Viterbi most-probable path."""

from __future__ import annotations

from repro.algorithms.base import MonotonicAlgorithm
from repro.graph.generators import DEFAULT_MAX_WEIGHT


class Viterbi(MonotonicAlgorithm):
    """Most-likely path in a graph with probabilistic transitions.

    The paper's Table II prints ``T = u.state / w`` with MAX-combine.  With
    transition probabilities ``p in (0, 1]`` the standard monotone Viterbi
    recurrence is ``T = u.state * p`` (path probability is the product of
    its transitions); division by a probability would grow without bound and
    break monotonicity, so we read the printed formula as a typo and
    implement the product form (documented in DESIGN.md).

    Datasets carry positive integer weights; :meth:`transform_weight` maps a
    raw weight ``w`` to the probability ``w / (max_weight + 1)`` so that
    heavier edges are more likely and every probability stays in ``(0, 1)``.
    """

    name = "viterbi"
    description = "Viterbi most-likely path"
    minimizing = False
    plus_formula = "T = u.state * p(w)"
    times_formula = "MAX(T, v.state)"

    def __init__(self, max_weight: int = DEFAULT_MAX_WEIGHT) -> None:
        if max_weight <= 0:
            raise ValueError("max_weight must be positive")
        self._scale = 1.0 / (max_weight + 1)

    def identity(self) -> float:
        return 0.0

    def source_state(self) -> float:
        return 1.0

    def transform_weight(self, raw_weight: float) -> float:
        probability = raw_weight * self._scale
        # Raw weights above max_weight would yield p >= 1; clamp defensively
        # so monotonicity (propagate never improves on u.state) always holds.
        return probability if probability < 1.0 else 1.0

    def propagate(self, u_state: float, weight: float) -> float:
        return u_state * weight

    def is_better(self, a: float, b: float) -> bool:
        return a > b

"""The paper's five monotonic pairwise algorithms and reference solvers."""

from repro.algorithms.base import MonotonicAlgorithm
from repro.algorithms.ppnp import PPNP
from repro.algorithms.ppsp import PPSP
from repro.algorithms.ppwp import PPWP
from repro.algorithms.reach import Reach
from repro.algorithms.registry import (
    get_algorithm,
    list_algorithms,
    register_algorithm,
    table2_rows,
)
from repro.algorithms.solvers import (
    SolveResult,
    dijkstra,
    recompute_vertex,
    worklist_fixpoint,
)
from repro.algorithms.viterbi import Viterbi

__all__ = [
    "MonotonicAlgorithm",
    "PPSP",
    "PPWP",
    "PPNP",
    "Reach",
    "Viterbi",
    "get_algorithm",
    "list_algorithms",
    "register_algorithm",
    "table2_rows",
    "SolveResult",
    "dijkstra",
    "worklist_fixpoint",
    "recompute_vertex",
]

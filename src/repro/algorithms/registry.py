"""Registry of the five monotonic algorithms evaluated in the paper."""

from __future__ import annotations

from typing import Callable, Dict, List

from repro.algorithms.base import MonotonicAlgorithm
from repro.algorithms.hops import HopCount
from repro.algorithms.ppnp import PPNP
from repro.algorithms.ppsp import PPSP
from repro.algorithms.ppwp import PPWP
from repro.algorithms.reach import Reach
from repro.algorithms.viterbi import Viterbi

_FACTORIES: Dict[str, Callable[[], MonotonicAlgorithm]] = {
    "ppsp": PPSP,
    "ppwp": PPWP,
    "ppnp": PPNP,
    "viterbi": Viterbi,
    "reach": Reach,
    # extension beyond the paper's Table II (see repro.algorithms.hops)
    "hops": HopCount,
}


def list_algorithms() -> List[str]:
    """Names of the paper's five algorithms, in Table II order.

    Extensions (``hops``, user registrations) resolve through
    :func:`get_algorithm` but are not part of the paper's evaluation set.
    """
    return ["ppsp", "ppwp", "ppnp", "viterbi", "reach"]


def get_algorithm(name: str) -> MonotonicAlgorithm:
    """Instantiate an algorithm by name (case-insensitive).

    Raises :class:`KeyError` with the available names for unknown inputs.
    """
    key = name.lower()
    try:
        factory = _FACTORIES[key]
    except KeyError:
        raise KeyError(
            f"unknown algorithm {name!r}; available: {', '.join(list_algorithms())}"
        ) from None
    return factory()


def register_algorithm(
    name: str, factory: Callable[[], MonotonicAlgorithm]
) -> None:
    """Register a user-defined monotonic algorithm.

    Downstream users can plug in any algorithm satisfying the
    :class:`~repro.algorithms.base.MonotonicAlgorithm` contract; every
    engine and the accelerator simulator will accept it.
    """
    key = name.lower()
    if key in _FACTORIES:
        raise ValueError(f"algorithm {name!r} is already registered")
    _FACTORIES[key] = factory


def table2_rows() -> List[Dict[str, str]]:
    """Rows of the paper's Table II, generated from the registry."""
    rows = []
    for name in list_algorithms():
        alg = get_algorithm(name)
        rows.append(
            {
                "algorithm": alg.name.upper() if alg.name != "viterbi" else "Viterbi",
                "plus": alg.plus_formula,
                "times": alg.times_formula,
                "description": alg.description,
            }
        )
    return rows

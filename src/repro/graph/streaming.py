"""Streaming graph driver: snapshots, batch buffering, and replay.

Mirrors the workflow of Figure 1(a): an initial snapshot ``G0`` undergoes a
full computation, then buffered updates are applied batch by batch, each
producing the next snapshot.  :class:`StreamingGraph` owns the evolving
topology; :class:`StreamReplay` feeds pre-generated batches to engines in
order (used by the benchmark harness so every engine sees identical input).
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import Iterator, List, Optional, Sequence, Tuple

from repro.errors import VertexOutOfRangeError
from repro.graph.batch import EdgeUpdate, UpdateBatch
from repro.graph.csr import CSRGraph
from repro.graph.dynamic import DynamicGraph


class StreamingGraph:
    """A dynamic graph plus a buffer of not-yet-applied updates.

    Updates are buffered with :meth:`ingest` until the batch threshold is
    reached (the paper buffers 100K); :meth:`seal_batch` drains the buffer
    into an :class:`UpdateBatch` and advances the snapshot counter once the
    batch is applied via :meth:`apply`.
    """

    def __init__(
        self,
        initial: DynamicGraph,
        batch_threshold: int = 100_000,
    ) -> None:
        if batch_threshold <= 0:
            raise ValueError("batch_threshold must be positive")
        self._graph = initial
        self._pending: List[EdgeUpdate] = []
        self._snapshot_id = 0
        self.batch_threshold = batch_threshold

    @property
    def graph(self) -> DynamicGraph:
        """The current topology (snapshot ``G_{snapshot_id}``)."""
        return self._graph

    @property
    def snapshot_id(self) -> int:
        return self._snapshot_id

    @property
    def pending_count(self) -> int:
        return len(self._pending)

    def ingest(self, update: EdgeUpdate, validate: bool = True) -> bool:
        """Buffer one update; returns ``True`` when the threshold is reached.

        By default the update is validated at the ingestion boundary: vertex
        ids must fit the current topology
        (:class:`~repro.errors.VertexOutOfRangeError`) and the weight must be
        finite — so a bad update fails here, with a clear error, rather than
        deep inside a later ``apply_batch``.  Callers that have already
        validated (e.g. :class:`repro.resilience.deadletter.IngestGuard`)
        pass ``validate=False``.
        """
        if validate:
            n = self._graph.num_vertices
            if update.u >= n:
                raise VertexOutOfRangeError(update.u, n)
            if update.v >= n:
                raise VertexOutOfRangeError(update.v, n)
            if not math.isfinite(update.weight):
                raise ValueError(f"non-finite weight in update {update}")
        self._pending.append(update)
        return len(self._pending) >= self.batch_threshold

    def seal_batch(self) -> UpdateBatch:
        """Drain the pending buffer into a batch (may be under-full)."""
        batch = UpdateBatch(self._pending)
        self._pending = []
        return batch

    def apply(self, batch: UpdateBatch) -> int:
        """Apply a sealed batch to the topology, advancing the snapshot id."""
        changed = self._graph.apply_batch(batch)
        self._snapshot_id += 1
        return changed

    def seek(self, snapshot_id: int) -> None:
        """Set the snapshot counter directly (O(1)).

        Used when resuming a recovered session: the topology already *is*
        snapshot ``snapshot_id`` (restored from a checkpoint plus WAL
        replay), so the counter just needs to match it — without looping
        ``commit_external`` millions of times on a production-scale stream.
        Refuses to seek with updates still buffered: those belong to the
        snapshot the counter currently points at.
        """
        if snapshot_id < 0:
            raise ValueError(f"snapshot id must be non-negative, got {snapshot_id}")
        if self._pending:
            raise ValueError(
                f"cannot seek with {len(self._pending)} updates still buffered"
            )
        self._snapshot_id = snapshot_id

    def commit_external(self) -> int:
        """Advance the snapshot id for a batch applied *by an engine*.

        Engines own topology application (they apply the batch's net effect
        themselves, see :meth:`repro.core.engine.CISGraphEngine._do_batch`),
        so a pipeline sharing one :class:`DynamicGraph` between the stream
        and the engine must advance the counter without re-applying the
        updates.  Returns the new snapshot id.
        """
        self._snapshot_id += 1
        return self._snapshot_id

    def snapshot_csr(self) -> CSRGraph:
        """Immutable CSR view of the current snapshot."""
        return CSRGraph.from_dynamic(self._graph)


@dataclass
class StreamStep:
    """One step of a replay: the batch and the snapshot id it produces."""

    snapshot_id: int
    batch: UpdateBatch


class StreamReplay:
    """Deterministic replay of pre-generated batches over an initial graph.

    The benchmark harness generates the stream once and replays it for every
    engine, guaranteeing all systems process identical updates — the paper's
    "for fairness" setup in Section IV-A.
    """

    def __init__(self, initial: DynamicGraph, batches: Sequence[UpdateBatch]) -> None:
        self._initial = initial
        self._batches = list(batches)

    @property
    def num_batches(self) -> int:
        return len(self._batches)

    @property
    def initial_graph(self) -> DynamicGraph:
        """A private copy of the initial snapshot (callers may mutate it)."""
        return self._initial.copy()

    def batches(self) -> Iterator[StreamStep]:
        """Iterate the stream as :class:`StreamStep` items."""
        for i, batch in enumerate(self._batches):
            yield StreamStep(snapshot_id=i + 1, batch=batch)

    def batch(self, index: int) -> UpdateBatch:
        return self._batches[index]

    def final_graph(self) -> DynamicGraph:
        """The topology after every batch has been applied."""
        graph = self.initial_graph
        for step in self.batches():
            graph.apply_batch(step.batch)
        return graph

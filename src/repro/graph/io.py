"""Edge-list I/O.

Supports the plain-text format used by SNAP/LAW dataset dumps
(``u v [weight]`` per line, ``#`` comments) and a fast NumPy ``.npz``
binary cache used by the benchmark harness.
"""

from __future__ import annotations

import os
from typing import List, Optional, Tuple

import numpy as np

from repro.graph.csr import CSRGraph
from repro.graph.dynamic import DynamicGraph

Edge = Tuple[int, int, float]


def load_edge_list(
    path: str,
    default_weight: float = 1.0,
    comment: str = "#",
) -> List[Edge]:
    """Read a whitespace-separated edge list.

    Lines are ``u v`` or ``u v weight``; missing weights get
    ``default_weight``.  Vertex ids must be non-negative integers.
    """
    edges: List[Edge] = []
    with open(path, "r") as handle:
        for lineno, line in enumerate(handle, start=1):
            line = line.strip()
            if not line or line.startswith(comment):
                continue
            parts = line.split()
            if len(parts) not in (2, 3):
                raise ValueError(f"{path}:{lineno}: expected 'u v [w]', got {line!r}")
            u, v = int(parts[0]), int(parts[1])
            w = float(parts[2]) if len(parts) == 3 else default_weight
            edges.append((u, v, w))
    return edges


def save_edge_list(path: str, edges: List[Edge], header: Optional[str] = None) -> None:
    """Write edges as ``u v weight`` lines with an optional ``#`` header."""
    with open(path, "w") as handle:
        if header:
            for line in header.splitlines():
                handle.write(f"# {line}\n")
        for u, v, w in edges:
            handle.write(f"{u} {v} {w:g}\n")


def save_npz(path: str, num_vertices: int, edges: List[Edge]) -> None:
    """Cache an edge list as a compressed NumPy archive."""
    src = np.array([e[0] for e in edges], dtype=np.int64)
    dst = np.array([e[1] for e in edges], dtype=np.int64)
    wgt = np.array([e[2] for e in edges], dtype=np.float64)
    np.savez_compressed(
        path, num_vertices=np.int64(num_vertices), src=src, dst=dst, wgt=wgt
    )


def load_npz(path: str) -> Tuple[int, List[Edge]]:
    """Load an edge list cached with :func:`save_npz`."""
    data = np.load(path)
    num_vertices = int(data["num_vertices"])
    edges = list(
        zip(data["src"].tolist(), data["dst"].tolist(), data["wgt"].tolist())
    )
    return num_vertices, edges


def edges_to_dynamic(num_vertices: int, edges: List[Edge]) -> DynamicGraph:
    """Convenience: materialise an edge list as a :class:`DynamicGraph`."""
    return DynamicGraph.from_edges(num_vertices, edges)


def edges_to_csr(num_vertices: int, edges: List[Edge]) -> CSRGraph:
    """Convenience: materialise an edge list as a :class:`CSRGraph`."""
    return CSRGraph.from_edges(num_vertices, edges)


def infer_num_vertices(edges: List[Edge]) -> int:
    """Smallest vertex-count that fits every edge endpoint."""
    best = -1
    for u, v, _ in edges:
        if u > best:
            best = u
        if v > best:
            best = v
    return best + 1

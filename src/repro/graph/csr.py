"""Compressed Sparse Row snapshots.

The accelerator stores graph topology in CSR (Section III-B): neighbor ids
and weights of one vertex are contiguous, so the neighbor prefetcher fetches
a whole edge list with a single base-address + length memory request.
:class:`CSRGraph` is the immutable snapshot format consumed by the hardware
simulator and the cold-start solver; it also knows the byte layout of its
arrays so the memory model can translate accesses to addresses.

CSR is also the **cross-process epoch snapshot** of the serve layer's
process backend (see ``docs/process_shards.md``): :class:`SharedCSR`
publishes the three arrays into one POSIX shared-memory segment so every
shard process attaches the same bytes instead of receiving a private
pickled copy of the topology, and :meth:`CSRGraph.to_dynamic` rebuilds a
mutable :class:`~repro.graph.dynamic.DynamicGraph` on the far side for
per-epoch delta application.
"""

from __future__ import annotations

import itertools
import os
import threading
from dataclasses import dataclass
from typing import Iterable, Iterator, List, Optional, Set, Tuple

import numpy as np

from repro.errors import VertexOutOfRangeError


class CSRGraph:
    """Immutable weighted digraph in CSR form.

    Attributes
    ----------
    indptr:
        ``int64[num_vertices + 1]`` — edge-list offsets per vertex.
    indices:
        ``int32[num_edges]`` — destination vertex of each edge.
    weights:
        ``float64[num_edges]`` — edge weights, aligned with ``indices``.
    """

    #: bytes per element, used by the hardware memory layout
    INDPTR_BYTES = 8
    INDEX_BYTES = 4
    WEIGHT_BYTES = 4  # the accelerator stores fp32 weights
    STATE_BYTES = 8

    def __init__(
        self,
        indptr: np.ndarray,
        indices: np.ndarray,
        weights: np.ndarray,
    ) -> None:
        if indptr.ndim != 1 or indices.ndim != 1 or weights.ndim != 1:
            raise ValueError("CSR arrays must be one-dimensional")
        if len(indices) != len(weights):
            raise ValueError("indices and weights must have equal length")
        if len(indptr) == 0 or indptr[0] != 0 or indptr[-1] != len(indices):
            raise ValueError("indptr must start at 0 and end at num_edges")
        if np.any(np.diff(indptr) < 0):
            raise ValueError("indptr must be non-decreasing")
        self.indptr = np.ascontiguousarray(indptr, dtype=np.int64)
        self.indices = np.ascontiguousarray(indices, dtype=np.int32)
        self.weights = np.ascontiguousarray(weights, dtype=np.float64)

    # ------------------------------------------------------------------
    # construction
    # ------------------------------------------------------------------
    @classmethod
    def from_edges(
        cls,
        num_vertices: int,
        edges: Iterable[Tuple[int, int, float]],
    ) -> "CSRGraph":
        """Build a CSR snapshot from ``(u, v, weight)`` triples."""
        edge_list = list(edges)
        num_edges = len(edge_list)
        src = np.empty(num_edges, dtype=np.int64)
        dst = np.empty(num_edges, dtype=np.int32)
        wgt = np.empty(num_edges, dtype=np.float64)
        for i, (u, v, w) in enumerate(edge_list):
            if not (0 <= u < num_vertices and 0 <= v < num_vertices):
                raise VertexOutOfRangeError(max(u, v), num_vertices)
            src[i] = u
            dst[i] = v
            wgt[i] = w
        order = np.argsort(src, kind="stable")
        src = src[order]
        dst = dst[order]
        wgt = wgt[order]
        indptr = np.zeros(num_vertices + 1, dtype=np.int64)
        np.add.at(indptr, src + 1, 1)
        np.cumsum(indptr, out=indptr)
        return cls(indptr, dst, wgt)

    @classmethod
    def from_dynamic(cls, graph) -> "CSRGraph":
        """Snapshot a :class:`~repro.graph.dynamic.DynamicGraph`."""
        num_vertices = graph.num_vertices
        indptr = np.zeros(num_vertices + 1, dtype=np.int64)
        for u in range(num_vertices):
            indptr[u + 1] = indptr[u] + graph.out_degree(u)
        num_edges = int(indptr[-1])
        indices = np.empty(num_edges, dtype=np.int32)
        weights = np.empty(num_edges, dtype=np.float64)
        pos = 0
        for u in range(num_vertices):
            for v, w in graph.out_neighbors(u):
                indices[pos] = v
                weights[pos] = w
                pos += 1
        return cls(indptr, indices, weights)

    def reversed(self) -> "CSRGraph":
        """CSR of the transposed graph (in-edges become out-edges)."""
        num_vertices = self.num_vertices
        sources = np.repeat(
            np.arange(num_vertices, dtype=np.int32), np.diff(self.indptr)
        )
        order = np.argsort(self.indices, kind="stable")
        indptr = np.zeros(num_vertices + 1, dtype=np.int64)
        np.add.at(indptr, self.indices.astype(np.int64) + 1, 1)
        np.cumsum(indptr, out=indptr)
        return CSRGraph(indptr, sources[order], self.weights[order])

    # ------------------------------------------------------------------
    # queries
    # ------------------------------------------------------------------
    @property
    def num_vertices(self) -> int:
        return len(self.indptr) - 1

    @property
    def num_edges(self) -> int:
        return len(self.indices)

    def out_degree(self, u: int) -> int:
        self._check_vertex(u)
        return int(self.indptr[u + 1] - self.indptr[u])

    def out_neighbors(self, u: int) -> Iterator[Tuple[int, float]]:
        """Iterate ``(neighbor, weight)`` over out-edges of ``u``."""
        self._check_vertex(u)
        lo = int(self.indptr[u])
        hi = int(self.indptr[u + 1])
        for i in range(lo, hi):
            yield int(self.indices[i]), float(self.weights[i])

    def neighbor_slice(self, u: int) -> Tuple[np.ndarray, np.ndarray]:
        """Vectorised view of ``u``'s neighbor ids and weights."""
        self._check_vertex(u)
        lo = int(self.indptr[u])
        hi = int(self.indptr[u + 1])
        return self.indices[lo:hi], self.weights[lo:hi]

    def edges(self) -> Iterator[Tuple[int, int, float]]:
        for u in range(self.num_vertices):
            for v, w in self.out_neighbors(u):
                yield u, v, w

    def average_degree(self) -> float:
        if self.num_vertices == 0:
            return 0.0
        return self.num_edges / self.num_vertices

    # ------------------------------------------------------------------
    # memory layout (used by repro.hw)
    # ------------------------------------------------------------------
    def edge_list_address(self, u: int, base: int = 0) -> Tuple[int, int]:
        """Byte address and length of ``u``'s packed (id, weight) edge list.

        The accelerator fetches a vertex's whole edge list with one request
        (Section III-B).  Each edge record is ``INDEX_BYTES + WEIGHT_BYTES``
        bytes, records of one vertex are contiguous.
        """
        self._check_vertex(u)
        record = self.INDEX_BYTES + self.WEIGHT_BYTES
        start = base + int(self.indptr[u]) * record
        length = self.out_degree(u) * record
        return start, length

    def to_dynamic(self):
        """Rebuild a mutable :class:`~repro.graph.dynamic.DynamicGraph`.

        This is how a shard process turns the attached shared-memory
        snapshot back into the adjacency structure the source groups
        mutate — the arrays are read once and copied, so the caller may
        close the shared segment immediately afterwards.
        """
        from repro.graph.dynamic import DynamicGraph

        graph = DynamicGraph(self.num_vertices)
        indptr = self.indptr
        indices = self.indices
        weights = self.weights
        for u in range(self.num_vertices):
            for i in range(int(indptr[u]), int(indptr[u + 1])):
                graph.add_edge(u, int(indices[i]), float(weights[i]))
        return graph

    def _check_vertex(self, vertex: int) -> None:
        if not 0 <= vertex < self.num_vertices:
            raise VertexOutOfRangeError(vertex, self.num_vertices)

    def __repr__(self) -> str:
        return f"CSRGraph(num_vertices={self.num_vertices}, num_edges={self.num_edges})"


# ----------------------------------------------------------------------
# shared-memory publication (the process backend's epoch snapshot)
# ----------------------------------------------------------------------

#: every segment this module creates carries the prefix so leak checks
#: (tests/conftest.py) can sweep ``/dev/shm`` for strays
SHM_PREFIX = "repro-csr-"

#: names published by this process and not yet unlinked (leak tracking)
_LIVE_SEGMENTS: Set[str] = set()
_SEGMENT_LOCK = threading.Lock()
_SEGMENT_SEQ = itertools.count(1)


def live_shared_segments() -> List[str]:
    """Segment names this process published but has not unlinked yet."""
    with _SEGMENT_LOCK:
        return sorted(_LIVE_SEGMENTS)


@dataclass(frozen=True)
class SharedCSRMeta:
    """Everything a peer process needs to attach a published snapshot.

    Kept to primitives (name + two lengths) so it crosses an IPC channel
    as a plain tuple; dtypes and the intra-segment layout are fixed by
    :class:`SharedCSR` (8-byte items first, so every array view is
    naturally aligned).
    """

    name: str
    num_vertices: int
    num_edges: int

    def as_tuple(self) -> Tuple[str, int, int]:
        return (self.name, self.num_vertices, self.num_edges)

    @classmethod
    def from_tuple(cls, data: Tuple[str, int, int]) -> "SharedCSRMeta":
        return cls(*data)


class SharedCSR:
    """One CSR snapshot in one POSIX shared-memory segment.

    Layout (offsets in bytes, everything contiguous)::

        [ indptr  int64   (V+1) ]   8-byte items first so the float64
        [ weights float64  E    ]   weights stay 8-byte aligned; the
        [ indices int32    E    ]   int32 ids close the segment

    The **publisher** (:meth:`publish`) owns the segment: its
    :meth:`close` unlinks the name.  **Attachers** (:meth:`attach`) map
    an existing name; their :meth:`close` only drops the mapping.  Both
    sides can hand out a zero-copy :attr:`graph` view while the mapping
    is open.
    """

    def __init__(self, shm, meta: SharedCSRMeta, owner: bool) -> None:
        self._shm = shm
        self.meta = meta
        self.owner = owner
        self._closed = False

    # ------------------------------------------------------------------
    @staticmethod
    def _layout(num_vertices: int, num_edges: int) -> Tuple[int, int, int]:
        """(weights offset, indices offset, total bytes) of the layout."""
        indptr_bytes = 8 * (num_vertices + 1)
        weights_off = indptr_bytes
        indices_off = weights_off + 8 * num_edges
        total = indices_off + 4 * num_edges
        return weights_off, indices_off, max(total, 1)

    @classmethod
    def publish(cls, csr: CSRGraph, name: Optional[str] = None) -> "SharedCSR":
        """Copy ``csr`` into a fresh shared segment (this side owns it)."""
        from multiprocessing import shared_memory

        if name is None:
            name = f"{SHM_PREFIX}{os.getpid()}-{next(_SEGMENT_SEQ)}"
        meta = SharedCSRMeta(name, csr.num_vertices, csr.num_edges)
        weights_off, indices_off, total = cls._layout(
            meta.num_vertices, meta.num_edges
        )
        shm = shared_memory.SharedMemory(name=name, create=True, size=total)
        buf = shm.buf
        np.frombuffer(
            buf, dtype=np.int64, count=meta.num_vertices + 1
        )[:] = csr.indptr
        if meta.num_edges:
            np.frombuffer(
                buf, dtype=np.float64, count=meta.num_edges,
                offset=weights_off,
            )[:] = csr.weights
            np.frombuffer(
                buf, dtype=np.int32, count=meta.num_edges,
                offset=indices_off,
            )[:] = csr.indices
        with _SEGMENT_LOCK:
            _LIVE_SEGMENTS.add(name)
        return cls(shm, meta, owner=True)

    @classmethod
    def attach(cls, meta: SharedCSRMeta) -> "SharedCSR":
        """Map a published segment by name (does not own the name).

        The attach must not register with the ``multiprocessing``
        resource tracker: the publisher owns the segment's lifetime, and
        forked children *share* the publisher's tracker — an attach-side
        register/unregister pair would strip the publisher's own
        registration, so its legitimate unlink later faults inside the
        tracker.  Python 3.13 exposes ``track=False`` for exactly this;
        on earlier runtimes registration is suppressed around the
        constructor (single-threaded bootstrap context, so the brief
        swap is safe).
        """
        from multiprocessing import shared_memory

        try:  # pragma: no cover - 3.13+ fast path
            shm = shared_memory.SharedMemory(name=meta.name, track=False)
        except TypeError:
            from multiprocessing import resource_tracker

            original = resource_tracker.register
            resource_tracker.register = lambda *args, **kwargs: None
            try:
                shm = shared_memory.SharedMemory(name=meta.name)
            finally:
                resource_tracker.register = original
        return cls(shm, meta, owner=False)

    # ------------------------------------------------------------------
    @property
    def graph(self) -> CSRGraph:
        """Zero-copy :class:`CSRGraph` over the shared buffer.

        Valid only while this handle is open; call
        :meth:`CSRGraph.to_dynamic` (which copies) before :meth:`close`
        if the topology must outlive the mapping.
        """
        if self._closed:
            raise ValueError(f"shared CSR {self.meta.name} is closed")
        weights_off, indices_off, _ = self._layout(
            self.meta.num_vertices, self.meta.num_edges
        )
        buf = self._shm.buf
        indptr = np.frombuffer(
            buf, dtype=np.int64, count=self.meta.num_vertices + 1
        )
        weights = np.frombuffer(
            buf, dtype=np.float64, count=self.meta.num_edges,
            offset=weights_off,
        )
        indices = np.frombuffer(
            buf, dtype=np.int32, count=self.meta.num_edges,
            offset=indices_off,
        )
        return CSRGraph(indptr, indices, weights)

    def unlink(self) -> None:
        """Remove the segment name (idempotent; attached maps survive)."""
        with _SEGMENT_LOCK:
            if self.meta.name not in _LIVE_SEGMENTS:
                return
            _LIVE_SEGMENTS.discard(self.meta.name)
        try:
            self._shm.unlink()
        except FileNotFoundError:  # pragma: no cover - torn down elsewhere
            pass

    def close(self) -> None:
        """Drop this mapping; the owner also unlinks the name (idempotent)."""
        if self._closed:
            return
        self._closed = True
        if self.owner:
            self.unlink()
        self._shm.close()

    def __enter__(self) -> "SharedCSR":
        return self

    def __exit__(self, *exc) -> None:
        self.close()

    def __repr__(self) -> str:
        role = "owner" if self.owner else "attached"
        return (
            f"SharedCSR({self.meta.name}, {role}, "
            f"V={self.meta.num_vertices}, E={self.meta.num_edges})"
        )

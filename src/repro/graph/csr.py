"""Compressed Sparse Row snapshots.

The accelerator stores graph topology in CSR (Section III-B): neighbor ids
and weights of one vertex are contiguous, so the neighbor prefetcher fetches
a whole edge list with a single base-address + length memory request.
:class:`CSRGraph` is the immutable snapshot format consumed by the hardware
simulator and the cold-start solver; it also knows the byte layout of its
arrays so the memory model can translate accesses to addresses.
"""

from __future__ import annotations

from typing import Iterable, Iterator, List, Optional, Tuple

import numpy as np

from repro.errors import VertexOutOfRangeError


class CSRGraph:
    """Immutable weighted digraph in CSR form.

    Attributes
    ----------
    indptr:
        ``int64[num_vertices + 1]`` — edge-list offsets per vertex.
    indices:
        ``int32[num_edges]`` — destination vertex of each edge.
    weights:
        ``float64[num_edges]`` — edge weights, aligned with ``indices``.
    """

    #: bytes per element, used by the hardware memory layout
    INDPTR_BYTES = 8
    INDEX_BYTES = 4
    WEIGHT_BYTES = 4  # the accelerator stores fp32 weights
    STATE_BYTES = 8

    def __init__(
        self,
        indptr: np.ndarray,
        indices: np.ndarray,
        weights: np.ndarray,
    ) -> None:
        if indptr.ndim != 1 or indices.ndim != 1 or weights.ndim != 1:
            raise ValueError("CSR arrays must be one-dimensional")
        if len(indices) != len(weights):
            raise ValueError("indices and weights must have equal length")
        if len(indptr) == 0 or indptr[0] != 0 or indptr[-1] != len(indices):
            raise ValueError("indptr must start at 0 and end at num_edges")
        if np.any(np.diff(indptr) < 0):
            raise ValueError("indptr must be non-decreasing")
        self.indptr = np.ascontiguousarray(indptr, dtype=np.int64)
        self.indices = np.ascontiguousarray(indices, dtype=np.int32)
        self.weights = np.ascontiguousarray(weights, dtype=np.float64)

    # ------------------------------------------------------------------
    # construction
    # ------------------------------------------------------------------
    @classmethod
    def from_edges(
        cls,
        num_vertices: int,
        edges: Iterable[Tuple[int, int, float]],
    ) -> "CSRGraph":
        """Build a CSR snapshot from ``(u, v, weight)`` triples."""
        edge_list = list(edges)
        num_edges = len(edge_list)
        src = np.empty(num_edges, dtype=np.int64)
        dst = np.empty(num_edges, dtype=np.int32)
        wgt = np.empty(num_edges, dtype=np.float64)
        for i, (u, v, w) in enumerate(edge_list):
            if not (0 <= u < num_vertices and 0 <= v < num_vertices):
                raise VertexOutOfRangeError(max(u, v), num_vertices)
            src[i] = u
            dst[i] = v
            wgt[i] = w
        order = np.argsort(src, kind="stable")
        src = src[order]
        dst = dst[order]
        wgt = wgt[order]
        indptr = np.zeros(num_vertices + 1, dtype=np.int64)
        np.add.at(indptr, src + 1, 1)
        np.cumsum(indptr, out=indptr)
        return cls(indptr, dst, wgt)

    @classmethod
    def from_dynamic(cls, graph) -> "CSRGraph":
        """Snapshot a :class:`~repro.graph.dynamic.DynamicGraph`."""
        num_vertices = graph.num_vertices
        indptr = np.zeros(num_vertices + 1, dtype=np.int64)
        for u in range(num_vertices):
            indptr[u + 1] = indptr[u] + graph.out_degree(u)
        num_edges = int(indptr[-1])
        indices = np.empty(num_edges, dtype=np.int32)
        weights = np.empty(num_edges, dtype=np.float64)
        pos = 0
        for u in range(num_vertices):
            for v, w in graph.out_neighbors(u):
                indices[pos] = v
                weights[pos] = w
                pos += 1
        return cls(indptr, indices, weights)

    def reversed(self) -> "CSRGraph":
        """CSR of the transposed graph (in-edges become out-edges)."""
        num_vertices = self.num_vertices
        sources = np.repeat(
            np.arange(num_vertices, dtype=np.int32), np.diff(self.indptr)
        )
        order = np.argsort(self.indices, kind="stable")
        indptr = np.zeros(num_vertices + 1, dtype=np.int64)
        np.add.at(indptr, self.indices.astype(np.int64) + 1, 1)
        np.cumsum(indptr, out=indptr)
        return CSRGraph(indptr, sources[order], self.weights[order])

    # ------------------------------------------------------------------
    # queries
    # ------------------------------------------------------------------
    @property
    def num_vertices(self) -> int:
        return len(self.indptr) - 1

    @property
    def num_edges(self) -> int:
        return len(self.indices)

    def out_degree(self, u: int) -> int:
        self._check_vertex(u)
        return int(self.indptr[u + 1] - self.indptr[u])

    def out_neighbors(self, u: int) -> Iterator[Tuple[int, float]]:
        """Iterate ``(neighbor, weight)`` over out-edges of ``u``."""
        self._check_vertex(u)
        lo = int(self.indptr[u])
        hi = int(self.indptr[u + 1])
        for i in range(lo, hi):
            yield int(self.indices[i]), float(self.weights[i])

    def neighbor_slice(self, u: int) -> Tuple[np.ndarray, np.ndarray]:
        """Vectorised view of ``u``'s neighbor ids and weights."""
        self._check_vertex(u)
        lo = int(self.indptr[u])
        hi = int(self.indptr[u + 1])
        return self.indices[lo:hi], self.weights[lo:hi]

    def edges(self) -> Iterator[Tuple[int, int, float]]:
        for u in range(self.num_vertices):
            for v, w in self.out_neighbors(u):
                yield u, v, w

    def average_degree(self) -> float:
        if self.num_vertices == 0:
            return 0.0
        return self.num_edges / self.num_vertices

    # ------------------------------------------------------------------
    # memory layout (used by repro.hw)
    # ------------------------------------------------------------------
    def edge_list_address(self, u: int, base: int = 0) -> Tuple[int, int]:
        """Byte address and length of ``u``'s packed (id, weight) edge list.

        The accelerator fetches a vertex's whole edge list with one request
        (Section III-B).  Each edge record is ``INDEX_BYTES + WEIGHT_BYTES``
        bytes, records of one vertex are contiguous.
        """
        self._check_vertex(u)
        record = self.INDEX_BYTES + self.WEIGHT_BYTES
        start = base + int(self.indptr[u]) * record
        length = self.out_degree(u) * record
        return start, length

    def _check_vertex(self, vertex: int) -> None:
        if not 0 <= vertex < self.num_vertices:
            raise VertexOutOfRangeError(vertex, self.num_vertices)

    def __repr__(self) -> str:
        return f"CSRGraph(num_vertices={self.num_vertices}, num_edges={self.num_edges})"

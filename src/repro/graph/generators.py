"""Synthetic graph generators.

The paper evaluates on Orkut, LiveJournal and UK-2002 (Table III), which are
multi-hundred-megabyte downloads unavailable offline.  These generators
produce scaled stand-ins with the structural properties the experiments
depend on — power-law degree skew (RMAT/Kronecker for social graphs,
preferential attachment with locality for web graphs) — plus regular
topologies (grids for road-network-style examples, Erdos-Renyi for fuzzing).

All generators are deterministic given a seed and return unique directed
edges ``(u, v, weight)`` with integer-valued positive weights, which every
algorithm's weight transform can consume (see
:meth:`repro.algorithms.base.MonotonicAlgorithm.transform_weight`).
"""

from __future__ import annotations

from typing import List, Optional, Tuple

import numpy as np

from repro.graph.popularity import ZipfSampler

Edge = Tuple[int, int, float]

#: Default inclusive weight range; matches common streaming-graph setups
#: where unweighted datasets are assigned small random integer weights.
DEFAULT_MAX_WEIGHT = 64


def _assign_weights(
    rng: np.random.Generator, count: int, max_weight: int
) -> np.ndarray:
    return rng.integers(1, max_weight + 1, size=count).astype(np.float64)


def _dedupe(src: np.ndarray, dst: np.ndarray) -> Tuple[np.ndarray, np.ndarray]:
    """Drop self loops and duplicate (u, v) pairs, keeping first occurrence."""
    mask = src != dst
    src, dst = src[mask], dst[mask]
    keys = src.astype(np.int64) * (int(dst.max(initial=0)) + 1) + dst
    _, first = np.unique(keys, return_index=True)
    first.sort()
    return src[first], dst[first]


def rmat(
    num_vertices: int,
    num_edges: int,
    a: float = 0.57,
    b: float = 0.19,
    c: float = 0.19,
    seed: int = 0,
    max_weight: int = DEFAULT_MAX_WEIGHT,
) -> List[Edge]:
    """Recursive-matrix (Kronecker) generator, the standard social-graph model.

    Parameters follow the Graph500 convention (``d = 1 - a - b - c``).
    Oversamples then deduplicates, so the returned edge count may be slightly
    below ``num_edges`` on dense configurations.
    """
    if not num_vertices > 0:
        raise ValueError("num_vertices must be positive")
    d = 1.0 - a - b - c
    if min(a, b, c, d) < 0:
        raise ValueError("RMAT probabilities must be non-negative and sum <= 1")
    scale = max(1, int(np.ceil(np.log2(num_vertices))))
    rng = np.random.default_rng(seed)

    target = num_edges
    src_parts: List[np.ndarray] = []
    dst_parts: List[np.ndarray] = []
    collected = 0
    # a couple of oversampling rounds are enough; duplicates are rare at the
    # densities we generate, but loop defensively.
    for _ in range(8):
        need = int((target - collected) * 1.15) + 16
        src = np.zeros(need, dtype=np.int64)
        dst = np.zeros(need, dtype=np.int64)
        for level in range(scale):
            r = rng.random(need)
            right = ((r >= a) & (r < a + b)) | (r >= a + b + c)
            down = r >= a + b
            src |= down.astype(np.int64) << level
            dst |= right.astype(np.int64) << level
        src %= num_vertices
        dst %= num_vertices
        src, dst = _dedupe(src, dst)
        src_parts.append(src)
        dst_parts.append(dst)
        all_src = np.concatenate(src_parts)
        all_dst = np.concatenate(dst_parts)
        all_src, all_dst = _dedupe(all_src, all_dst)
        src_parts = [all_src]
        dst_parts = [all_dst]
        collected = len(all_src)
        if collected >= target:
            break
    src = src_parts[0][:target]
    dst = dst_parts[0][:target]
    weights = _assign_weights(rng, len(src), max_weight)
    return list(zip(src.tolist(), dst.tolist(), weights.tolist()))


def erdos_renyi(
    num_vertices: int,
    num_edges: int,
    seed: int = 0,
    max_weight: int = DEFAULT_MAX_WEIGHT,
) -> List[Edge]:
    """Uniform random digraph with exactly ``num_edges`` unique edges."""
    if num_edges > num_vertices * (num_vertices - 1):
        raise ValueError("too many edges requested for a simple digraph")
    rng = np.random.default_rng(seed)
    chosen: set = set()
    edges: List[Tuple[int, int]] = []
    while len(edges) < num_edges:
        need = num_edges - len(edges)
        src = rng.integers(0, num_vertices, size=need * 2)
        dst = rng.integers(0, num_vertices, size=need * 2)
        for u, v in zip(src.tolist(), dst.tolist()):
            if u == v or (u, v) in chosen:
                continue
            chosen.add((u, v))
            edges.append((u, v))
            if len(edges) == num_edges:
                break
    weights = _assign_weights(rng, len(edges), max_weight)
    return [(u, v, w) for (u, v), w in zip(edges, weights.tolist())]


def web_graph(
    num_vertices: int,
    num_edges: int,
    locality: float = 0.6,
    seed: int = 0,
    max_weight: int = DEFAULT_MAX_WEIGHT,
) -> List[Edge]:
    """Web-crawl-like graph (UK-2002 stand-in).

    Web graphs combine heavy-tailed in-degrees (popular pages) with strong
    host locality (most hyperlinks stay within a neighborhood of ids, since
    crawls order pages by host).  Each edge's destination is drawn either
    near its source (with probability ``locality``) or by preferential
    attachment over a Zipf-ranked popularity table.
    """
    if not 0 <= locality <= 1:
        raise ValueError("locality must be in [0, 1]")
    rng = np.random.default_rng(seed)
    # Zipf-like popularity over a random permutation of vertex ids.
    popularity = ZipfSampler(num_vertices, exponent=0.8, rng=rng, permute=True)

    chosen: set = set()
    edges: List[Tuple[int, int]] = []
    window = max(4, num_vertices // 64)
    while len(edges) < num_edges:
        need = (num_edges - len(edges)) * 2
        src = rng.integers(0, num_vertices, size=need)
        local = rng.random(need) < locality
        offsets = rng.integers(-window, window + 1, size=need)
        near = (src + offsets) % num_vertices
        popular = popularity.sample(need)
        dst = np.where(local, near, popular)
        for u, v in zip(src.tolist(), dst.tolist()):
            if u == v or (u, v) in chosen:
                continue
            chosen.add((u, v))
            edges.append((u, v))
            if len(edges) == num_edges:
                break
    weights = _assign_weights(rng, len(edges), max_weight)
    return [(u, v, w) for (u, v), w in zip(edges, weights.tolist())]


def grid(
    rows: int,
    cols: int,
    bidirectional: bool = True,
    seed: int = 0,
    max_weight: int = DEFAULT_MAX_WEIGHT,
) -> List[Edge]:
    """Rectangular grid, a road-network stand-in for the navigation example.

    Vertex ``(r, c)`` has id ``r * cols + c`` and edges to its right and
    down neighbors (plus the reverse edges when ``bidirectional``).
    """
    rng = np.random.default_rng(seed)
    edges: List[Edge] = []

    def vid(r: int, c: int) -> int:
        return r * cols + c

    for r in range(rows):
        for c in range(cols):
            here = vid(r, c)
            if c + 1 < cols:
                w = float(rng.integers(1, max_weight + 1))
                edges.append((here, vid(r, c + 1), w))
                if bidirectional:
                    edges.append((vid(r, c + 1), here, w))
            if r + 1 < rows:
                w = float(rng.integers(1, max_weight + 1))
                edges.append((here, vid(r + 1, c), w))
                if bidirectional:
                    edges.append((vid(r + 1, c), here, w))
    return edges


def small_world(
    num_vertices: int,
    neighbors: int = 4,
    rewire_probability: float = 0.1,
    seed: int = 0,
    max_weight: int = DEFAULT_MAX_WEIGHT,
) -> List[Edge]:
    """Watts-Strogatz-style small-world digraph.

    Each vertex links to its ``neighbors`` clockwise ring successors; each
    link is rewired to a uniform random target with
    ``rewire_probability`` — short average path lengths with high local
    clustering, a useful contrast to RMAT's skew in sensitivity studies.
    """
    if neighbors < 1 or neighbors >= num_vertices:
        raise ValueError("need 1 <= neighbors < num_vertices")
    if not 0 <= rewire_probability <= 1:
        raise ValueError("rewire_probability must be in [0, 1]")
    rng = np.random.default_rng(seed)
    chosen: set = set()
    edges: List[Edge] = []
    for u in range(num_vertices):
        for k in range(1, neighbors + 1):
            v = (u + k) % num_vertices
            if rng.random() < rewire_probability:
                v = int(rng.integers(0, num_vertices))
            if v == u or (u, v) in chosen:
                continue
            chosen.add((u, v))
            edges.append((u, v, float(rng.integers(1, max_weight + 1))))
    return edges


def path_graph(length: int, weight: float = 1.0) -> List[Edge]:
    """A simple directed path ``0 -> 1 -> ... -> length`` (test helper)."""
    return [(i, i + 1, weight) for i in range(length)]

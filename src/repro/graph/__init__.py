"""Streaming-graph substrate: dynamic topology, CSR snapshots, batches."""

from repro.graph.batch import EdgeUpdate, UpdateBatch, UpdateKind, add, delete
from repro.graph.csr import CSRGraph
from repro.graph.dynamic import DynamicGraph
from repro.graph.popularity import ZipfSampler
from repro.graph.streaming import StreamingGraph, StreamReplay, StreamStep

__all__ = [
    "EdgeUpdate",
    "UpdateBatch",
    "UpdateKind",
    "add",
    "delete",
    "CSRGraph",
    "DynamicGraph",
    "StreamingGraph",
    "StreamReplay",
    "StreamStep",
    "ZipfSampler",
]

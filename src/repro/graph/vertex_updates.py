"""Vertex-level updates expressed as edge-update series.

Section II-A: "we simulate graph updates as edge additions and deletions
since vertex additions and deletions can be transformed into a series of
edge updates."  These helpers perform that transformation so streams
produced by vertex-churn workloads (user sign-ups/account removals in a
social graph, road closures of whole intersections) can drive the same
engines.
"""

from __future__ import annotations

from typing import Iterable, List, Tuple

from repro.graph.batch import EdgeUpdate, UpdateBatch, UpdateKind
from repro.graph.dynamic import DynamicGraph


def vertex_addition(
    vertex: int,
    out_edges: Iterable[Tuple[int, float]] = (),
    in_edges: Iterable[Tuple[int, float]] = (),
) -> List[EdgeUpdate]:
    """Edge-update series attaching a new vertex to the graph.

    ``out_edges`` are ``(neighbor, weight)`` pairs leaving the vertex,
    ``in_edges`` arrive at it.  The vertex id must already be within the
    engine's vertex universe (engines run on a fixed id space; grow the
    graph with :meth:`DynamicGraph.ensure_vertex` before streaming).
    """
    updates = [
        EdgeUpdate(UpdateKind.ADD, vertex, neighbor, weight)
        for neighbor, weight in out_edges
    ]
    updates.extend(
        EdgeUpdate(UpdateKind.ADD, neighbor, vertex, weight)
        for neighbor, weight in in_edges
    )
    return updates


def vertex_deletion(graph: DynamicGraph, vertex: int) -> List[EdgeUpdate]:
    """Edge-update series detaching ``vertex`` from the current topology.

    Emits one deletion per incident edge (both directions), in out-edges
    then in-edges order.  The updates reference the *current* weights so
    deletion classification sees the right values.
    """
    updates = [
        EdgeUpdate(UpdateKind.DELETE, vertex, neighbor, weight)
        for neighbor, weight in graph.out_neighbors(vertex)
    ]
    updates.extend(
        EdgeUpdate(UpdateKind.DELETE, neighbor, vertex, weight)
        for neighbor, weight in graph.in_neighbors(vertex)
        if neighbor != vertex
    )
    return updates


def batch_with_vertex_updates(
    graph: DynamicGraph,
    added_vertices: Iterable[Tuple[int, Iterable[Tuple[int, float]], Iterable[Tuple[int, float]]]] = (),
    deleted_vertices: Iterable[int] = (),
) -> UpdateBatch:
    """Build one update batch from vertex-level churn.

    ``added_vertices`` items are ``(vertex, out_edges, in_edges)``;
    ``deleted_vertices`` are detached from the topology as it stands when
    this function runs (deletions of the same vertex's edges are emitted
    once even if two deleted vertices share an edge).
    """
    batch = UpdateBatch()
    emitted = set()
    for vertex in deleted_vertices:
        for update in vertex_deletion(graph, vertex):
            if update.edge not in emitted:
                emitted.add(update.edge)
                batch.append(update)
    for vertex, out_edges, in_edges in added_vertices:
        batch.extend(vertex_addition(vertex, out_edges, in_edges))
    return batch

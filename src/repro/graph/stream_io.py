"""Persisting update streams.

Streams (initial snapshot + batches) can be saved and replayed so that
experiments are reproducible across machines and so real dataset traces
can be imported.  Two formats:

* a human-readable text format::

      # cisgraph-stream v1
      # vertices 6
      e 0 1 2.0            <- initial snapshot edges
      ...
      # batch 0
      a 0 2 1.5            <- addition
      d 0 1 2.0            <- deletion
      # batch 1
      ...

* a compressed NumPy archive (``.npz``) for large streams.
"""

from __future__ import annotations

import zipfile
from typing import List, Optional, Tuple

import numpy as np

from repro.errors import StreamFormatError
from repro.graph.batch import EdgeUpdate, UpdateBatch, UpdateKind
from repro.graph.dynamic import DynamicGraph
from repro.graph.streaming import StreamReplay

_HEADER = "# cisgraph-stream v1"


def save_stream_text(path: str, replay: StreamReplay) -> None:
    """Write a replayable stream in the text format.

    Weights are written with ``repr`` (shortest string that round-trips the
    float exactly), so save → load → save is byte-for-byte idempotent; the
    old ``{w:g}`` formatting truncated to 6 significant digits and silently
    perturbed weights on every cycle.
    """
    graph = replay.initial_graph
    with open(path, "w") as handle:
        handle.write(f"{_HEADER}\n")
        handle.write(f"# vertices {graph.num_vertices}\n")
        for u, v, w in graph.edges():
            handle.write(f"e {u} {v} {w!r}\n")
        for index in range(replay.num_batches):
            handle.write(f"# batch {index}\n")
            for upd in replay.batch(index):
                tag = "a" if upd.is_addition else "d"
                handle.write(f"{tag} {upd.u} {upd.v} {upd.weight!r}\n")


def load_stream_text(path: str) -> StreamReplay:
    """Read a stream written by :func:`save_stream_text`."""
    num_vertices: Optional[int] = None
    edges: List[Tuple[int, int, float]] = []
    batches: List[UpdateBatch] = []
    current: Optional[UpdateBatch] = None
    with open(path, "r") as handle:
        first = handle.readline().strip()
        if first != _HEADER:
            raise ValueError(f"{path}: not a cisgraph stream (header {first!r})")
        for lineno, line in enumerate(handle, start=2):
            line = line.strip()
            if not line:
                continue
            if line.startswith("# vertices"):
                num_vertices = int(line.split()[2])
                continue
            if line.startswith("# batch"):
                current = UpdateBatch()
                batches.append(current)
                continue
            if line.startswith("#"):
                continue
            parts = line.split()
            if len(parts) != 4:
                raise ValueError(f"{path}:{lineno}: malformed line {line!r}")
            tag, u, v, w = parts[0], int(parts[1]), int(parts[2]), float(parts[3])
            if tag == "e":
                if current is not None:
                    raise ValueError(
                        f"{path}:{lineno}: snapshot edge after batches started"
                    )
                edges.append((u, v, w))
            elif tag in ("a", "d"):
                if current is None:
                    raise ValueError(f"{path}:{lineno}: update before any batch")
                kind = UpdateKind.ADD if tag == "a" else UpdateKind.DELETE
                current.append(EdgeUpdate(kind, u, v, w))
            else:
                raise ValueError(f"{path}:{lineno}: unknown record {tag!r}")
    if num_vertices is None:
        raise ValueError(f"{path}: missing '# vertices' header")
    initial = DynamicGraph.from_edges(num_vertices, edges)
    return StreamReplay(initial, batches)


def save_stream_npz(path: str, replay: StreamReplay) -> None:
    """Write a stream as a compressed NumPy archive."""
    graph = replay.initial_graph
    edge_list = list(graph.edges())
    arrays = {
        "num_vertices": np.int64(graph.num_vertices),
        "num_batches": np.int64(replay.num_batches),
        "edges_src": np.array([e[0] for e in edge_list], dtype=np.int64),
        "edges_dst": np.array([e[1] for e in edge_list], dtype=np.int64),
        "edges_wgt": np.array([e[2] for e in edge_list], dtype=np.float64),
    }
    for index in range(replay.num_batches):
        batch = replay.batch(index)
        arrays[f"batch{index}_kind"] = np.array(
            [1 if upd.is_addition else 0 for upd in batch], dtype=np.int8
        )
        arrays[f"batch{index}_u"] = np.array([upd.u for upd in batch], dtype=np.int64)
        arrays[f"batch{index}_v"] = np.array([upd.v for upd in batch], dtype=np.int64)
        arrays[f"batch{index}_w"] = np.array(
            [upd.weight for upd in batch], dtype=np.float64
        )
    np.savez_compressed(path, **arrays)


def load_stream_npz(path: str) -> StreamReplay:
    """Read a stream written by :func:`save_stream_npz`.

    The archive handle is closed before returning (``np.load`` keeps the
    underlying zip file open until the ``NpzFile`` is closed — the old code
    leaked it), and corrupt or truncated archives raise a typed
    :class:`~repro.errors.StreamFormatError` instead of a raw
    ``zipfile.BadZipFile``/``KeyError``.
    """
    try:
        data = np.load(path)
    except FileNotFoundError as exc:
        raise StreamFormatError(f"stream {path!r} does not exist") from exc
    except (zipfile.BadZipFile, OSError, ValueError) as exc:
        raise StreamFormatError(f"stream {path!r} is corrupt: {exc}") from exc
    if not isinstance(data, np.lib.npyio.NpzFile):
        raise StreamFormatError(f"stream {path!r} is not an npz archive")
    with data:
        try:
            num_vertices = int(data["num_vertices"])
            edges = list(
                zip(
                    data["edges_src"].tolist(),
                    data["edges_dst"].tolist(),
                    data["edges_wgt"].tolist(),
                )
            )
            batches = []
            for index in range(int(data["num_batches"])):
                kinds = data[f"batch{index}_kind"]
                us = data[f"batch{index}_u"]
                vs = data[f"batch{index}_v"]
                ws = data[f"batch{index}_w"]
                batch = UpdateBatch()
                for kind, u, v, w in zip(
                    kinds.tolist(), us.tolist(), vs.tolist(), ws.tolist()
                ):
                    batch.append(
                        EdgeUpdate(
                            UpdateKind.ADD if kind else UpdateKind.DELETE,
                            int(u),
                            int(v),
                            float(w),
                        )
                    )
                batches.append(batch)
        except (KeyError, zipfile.BadZipFile) as exc:
            raise StreamFormatError(
                f"stream {path!r} is missing or corrupt at field {exc}"
            ) from exc
    initial = DynamicGraph.from_edges(num_vertices, edges)
    return StreamReplay(initial, batches)

"""Edge updates and update batches.

A streaming graph evolves through *batches* of edge additions and deletions
(Section II-A of the paper; vertex updates are expressed as series of edge
updates).  :class:`EdgeUpdate` is one addition or deletion and
:class:`UpdateBatch` is an ordered collection of them as delivered to the
processing engines.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass, field
from typing import Iterable, Iterator, List, Sequence, Tuple


class UpdateKind(enum.Enum):
    """Whether an update adds or deletes an edge."""

    ADD = "add"
    DELETE = "delete"

    def __str__(self) -> str:  # pragma: no cover - cosmetic
        return self.value


@dataclass(frozen=True)
class EdgeUpdate:
    """A single streaming update ``u --w--> v`` (addition or deletion).

    ``weight`` is the raw dataset weight; algorithm-specific transforms (for
    example Viterbi's probability mapping) are applied by the algorithm, not
    stored here, so one batch can drive every algorithm.
    """

    kind: UpdateKind
    u: int
    v: int
    weight: float = 1.0

    def __post_init__(self) -> None:
        if self.u < 0 or self.v < 0:
            raise ValueError(f"vertex ids must be non-negative: {self}")
        if self.u == self.v:
            raise ValueError(f"self loops are not modelled: {self}")
        if not self.weight > 0:
            raise ValueError(f"edge weights must be positive: {self}")

    @property
    def is_addition(self) -> bool:
        return self.kind is UpdateKind.ADD

    @property
    def is_deletion(self) -> bool:
        return self.kind is UpdateKind.DELETE

    @property
    def edge(self) -> Tuple[int, int]:
        return (self.u, self.v)

    def __str__(self) -> str:
        sign = "+" if self.is_addition else "-"
        return f"{sign}({self.u} --{self.weight:g}--> {self.v})"


def add(u: int, v: int, weight: float = 1.0) -> EdgeUpdate:
    """Shorthand constructor for an edge addition."""
    return EdgeUpdate(UpdateKind.ADD, u, v, weight)


def delete(u: int, v: int, weight: float = 1.0) -> EdgeUpdate:
    """Shorthand constructor for an edge deletion."""
    return EdgeUpdate(UpdateKind.DELETE, u, v, weight)


@dataclass
class UpdateBatch:
    """An ordered batch of edge updates applied to one snapshot.

    The paper buffers updates until a threshold (100K in its evaluation) and
    applies them as one batch; engines receive the batch as a whole so they
    can classify and reorder it.
    """

    updates: List[EdgeUpdate] = field(default_factory=list)

    def __len__(self) -> int:
        return len(self.updates)

    def __iter__(self) -> Iterator[EdgeUpdate]:
        return iter(self.updates)

    def __getitem__(self, index: int) -> EdgeUpdate:
        return self.updates[index]

    def append(self, update: EdgeUpdate) -> None:
        self.updates.append(update)

    def extend(self, updates: Iterable[EdgeUpdate]) -> None:
        self.updates.extend(updates)

    @property
    def additions(self) -> List[EdgeUpdate]:
        """All additions, in arrival order."""
        return [upd for upd in self.updates if upd.is_addition]

    @property
    def deletions(self) -> List[EdgeUpdate]:
        """All deletions, in arrival order."""
        return [upd for upd in self.updates if upd.is_deletion]

    @property
    def num_additions(self) -> int:
        return sum(1 for upd in self.updates if upd.is_addition)

    @property
    def num_deletions(self) -> int:
        return len(self.updates) - self.num_additions

    def max_vertex(self) -> int:
        """Largest vertex id referenced by the batch (-1 if empty)."""
        best = -1
        for upd in self.updates:
            if upd.u > best:
                best = upd.u
            if upd.v > best:
                best = upd.v
        return best

    @classmethod
    def from_pairs(
        cls, pairs: Sequence[Tuple[str, int, int, float]]
    ) -> "UpdateBatch":
        """Build a batch from ``(kind, u, v, weight)`` tuples.

        ``kind`` is ``"add"`` or ``"delete"``; handy for tests and loaders.
        """
        batch = cls()
        for kind, u, v, w in pairs:
            batch.append(EdgeUpdate(UpdateKind(kind), u, v, w))
        return batch


def net_effects(batch: UpdateBatch, edge_weight) -> "UpdateBatch":
    """Reduce a batch to its *net* topology effect.

    Engines that classify a whole batch before processing (CISGraph) must
    not propagate through an edge that a later update in the same batch
    removes.  This helper replays the batch against the pre-batch topology
    (queried through ``edge_weight(u, v) -> Optional[float]``) and returns an
    equivalent batch with at most one deletion followed by at most one
    addition per edge: pure additions, pure deletions (carrying the
    *pre-batch* weight, which classification needs), and re-weights expressed
    as a deletion plus an addition.  Updates that cancel out disappear.

    Deletions come first in the returned batch only per-edge; the overall
    ordering groups all net deletions after all net additions is NOT imposed
    here — callers schedule as they see fit.
    """
    before: dict = {}
    after: dict = {}
    order: List[Tuple[int, int]] = []
    for upd in batch:
        key = upd.edge
        if key not in before:
            before[key] = edge_weight(upd.u, upd.v)
            order.append(key)
        after[key] = upd.weight if upd.is_addition else None

    reduced = UpdateBatch()
    for key in order:
        u, v = key
        old = before[key]
        new = after[key]
        if old is None and new is not None:
            reduced.append(EdgeUpdate(UpdateKind.ADD, u, v, new))
        elif old is not None and new is None:
            reduced.append(EdgeUpdate(UpdateKind.DELETE, u, v, old))
        elif old is not None and new is not None and old != new:
            reduced.append(EdgeUpdate(UpdateKind.DELETE, u, v, old))
            reduced.append(EdgeUpdate(UpdateKind.ADD, u, v, new))
        # old == new (including both None): no net effect
    return reduced

"""Mutable weighted digraph supporting streaming edge updates.

:class:`DynamicGraph` is the in-memory topology every engine mutates as
batches arrive.  It keeps both out- and in-adjacency because incremental
deletion repair (KickStarter-style re-computation, Section II-A) must ask
"which in-neighbors can still supply vertex ``v``'s state?".

Adjacency is stored as one ``dict`` per vertex mapping neighbor id to edge
weight.  Parallel edges are not modelled (matching CSR snapshots); adding an
existing edge overwrites its weight.
"""

from __future__ import annotations

from typing import Dict, Iterable, Iterator, List, Optional, Tuple

from repro.errors import EdgeNotFoundError, VertexOutOfRangeError
from repro.graph.batch import EdgeUpdate, UpdateBatch


class DynamicGraph:
    """A directed weighted graph with O(1) edge addition and deletion."""

    def __init__(self, num_vertices: int = 0) -> None:
        if num_vertices < 0:
            raise ValueError("num_vertices must be non-negative")
        self._out: List[Dict[int, float]] = [dict() for _ in range(num_vertices)]
        self._in: List[Dict[int, float]] = [dict() for _ in range(num_vertices)]
        self._num_edges = 0

    # ------------------------------------------------------------------
    # construction helpers
    # ------------------------------------------------------------------
    @classmethod
    def from_edges(
        cls,
        num_vertices: int,
        edges: Iterable[Tuple[int, int, float]],
    ) -> "DynamicGraph":
        """Build a graph from ``(u, v, weight)`` triples."""
        graph = cls(num_vertices)
        for u, v, w in edges:
            graph.add_edge(u, v, w)
        return graph

    def copy(self) -> "DynamicGraph":
        """Deep copy (adjacency dicts are duplicated)."""
        clone = DynamicGraph(self.num_vertices)
        clone._out = [dict(adj) for adj in self._out]
        clone._in = [dict(adj) for adj in self._in]
        clone._num_edges = self._num_edges
        return clone

    # ------------------------------------------------------------------
    # size queries
    # ------------------------------------------------------------------
    @property
    def num_vertices(self) -> int:
        return len(self._out)

    @property
    def num_edges(self) -> int:
        return self._num_edges

    def out_degree(self, u: int) -> int:
        self._check_vertex(u)
        return len(self._out[u])

    def in_degree(self, v: int) -> int:
        self._check_vertex(v)
        return len(self._in[v])

    # ------------------------------------------------------------------
    # vertex / edge mutation
    # ------------------------------------------------------------------
    def ensure_vertex(self, vertex: int) -> None:
        """Grow the vertex set so that ``vertex`` is a valid id."""
        if vertex < 0:
            raise VertexOutOfRangeError(vertex, self.num_vertices)
        while len(self._out) <= vertex:
            self._out.append(dict())
            self._in.append(dict())

    def add_edge(self, u: int, v: int, weight: float = 1.0) -> bool:
        """Insert (or re-weight) edge ``u -> v``.

        Returns ``True`` when the edge is new, ``False`` when an existing
        edge's weight was overwritten.
        """
        self._check_vertex(u)
        self._check_vertex(v)
        is_new = v not in self._out[u]
        self._out[u][v] = weight
        self._in[v][u] = weight
        if is_new:
            self._num_edges += 1
        return is_new

    def remove_edge(self, u: int, v: int, missing_ok: bool = False) -> bool:
        """Delete edge ``u -> v``.

        Returns ``True`` when an edge was removed.  With ``missing_ok`` a
        missing edge is ignored (streaming batches may delete an edge that a
        preceding update in the same batch already removed); otherwise
        :class:`EdgeNotFoundError` is raised.
        """
        self._check_vertex(u)
        self._check_vertex(v)
        if v not in self._out[u]:
            if missing_ok:
                return False
            raise EdgeNotFoundError(u, v)
        del self._out[u][v]
        del self._in[v][u]
        self._num_edges -= 1
        return True

    def apply_update(self, update: EdgeUpdate, missing_ok: bool = True) -> bool:
        """Apply one streaming update to the topology.

        Returns ``True`` if the topology changed.
        """
        if update.is_addition:
            return self.add_edge(update.u, update.v, update.weight)
        return self.remove_edge(update.u, update.v, missing_ok=missing_ok)

    def apply_batch(self, batch: UpdateBatch, missing_ok: bool = True) -> int:
        """Apply a whole batch in order; returns the number of effective changes."""
        changed = 0
        for update in batch:
            if self.apply_update(update, missing_ok=missing_ok):
                changed += 1
        return changed

    # ------------------------------------------------------------------
    # traversal
    # ------------------------------------------------------------------
    def has_edge(self, u: int, v: int) -> bool:
        self._check_vertex(u)
        self._check_vertex(v)
        return v in self._out[u]

    def edge_weight(self, u: int, v: int) -> float:
        self._check_vertex(u)
        self._check_vertex(v)
        try:
            return self._out[u][v]
        except KeyError:
            raise EdgeNotFoundError(u, v) from None

    def out_neighbors(self, u: int) -> Iterator[Tuple[int, float]]:
        """Iterate ``(neighbor, weight)`` over out-edges of ``u``."""
        self._check_vertex(u)
        return iter(self._out[u].items())

    def in_neighbors(self, v: int) -> Iterator[Tuple[int, float]]:
        """Iterate ``(neighbor, weight)`` over in-edges of ``v``."""
        self._check_vertex(v)
        return iter(self._in[v].items())

    def out_adj(self, u: int) -> Dict[int, float]:
        """Direct (read-only by convention) access to ``u``'s out-adjacency dict.

        Exposed for hot loops in the engines; callers must not mutate it.
        """
        return self._out[u]

    def in_adj(self, v: int) -> Dict[int, float]:
        """Direct (read-only by convention) access to ``v``'s in-adjacency dict."""
        return self._in[v]

    def edges(self) -> Iterator[Tuple[int, int, float]]:
        """Iterate all edges as ``(u, v, weight)``."""
        for u, adj in enumerate(self._out):
            for v, w in adj.items():
                yield (u, v, w)

    def degrees(self) -> List[int]:
        """Out-degree of every vertex (used for hub selection)."""
        return [len(adj) for adj in self._out]

    def total_degrees(self) -> List[int]:
        """Out-degree + in-degree of every vertex."""
        return [len(out) + len(inn) for out, inn in zip(self._out, self._in)]

    # ------------------------------------------------------------------
    # internals
    # ------------------------------------------------------------------
    def _check_vertex(self, vertex: int) -> None:
        if not 0 <= vertex < len(self._out):
            raise VertexOutOfRangeError(vertex, len(self._out))

    def __repr__(self) -> str:
        return (
            f"DynamicGraph(num_vertices={self.num_vertices}, "
            f"num_edges={self.num_edges})"
        )

    def check_consistency(self) -> None:
        """Verify the out/in adjacency mirrors agree (used by tests)."""
        count = 0
        for u, adj in enumerate(self._out):
            for v, w in adj.items():
                assert self._in[v].get(u) == w, f"in-adjacency missing {u}->{v}"
                count += 1
        in_count = sum(len(adj) for adj in self._in)
        assert count == in_count == self._num_edges, "edge count drifted"

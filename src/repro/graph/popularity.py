"""Seeded Zipf-ranked popularity sampling, shared across generators.

Both synthetic graph generation (:func:`repro.graph.generators.web_graph`,
which draws hyperlink destinations by preferential attachment) and the
traffic simulator (:mod:`repro.bench.traffic`, which skews session and
read popularity so caches and breakers see realistic hot keys) need the
same primitive: draw items from a Zipf-ranked popularity table,
deterministically under a seeded :class:`numpy.random.Generator`.  This
module is the single implementation both draw from.
"""

from __future__ import annotations

from typing import Optional, Union

import numpy as np


class ZipfSampler:
    """Draw items with Zipf-ranked popularity ``P(rank r) ∝ 1 / r**s``.

    ``num_items`` is the universe size; ``exponent`` is the skew ``s``
    (0 = uniform; web-graph degree skew uses 0.8; session popularity in
    production traces typically lands between 0.8 and 1.2).  With
    ``permute=True`` the rank-to-item mapping is a random permutation
    drawn from ``rng`` at construction (popular items scattered across
    the id space, as in a web crawl); otherwise item ``i`` simply has
    rank ``i + 1``, so item 0 is the hottest — convenient when the caller
    owns the item table.

    All draws consume ``rng`` (a :class:`numpy.random.Generator` or a
    seed for one), so a fixed seed yields an identical draw sequence.
    """

    def __init__(
        self,
        num_items: int,
        exponent: float = 0.8,
        rng: Union[np.random.Generator, int, None] = None,
        permute: bool = False,
    ) -> None:
        if num_items <= 0:
            raise ValueError("num_items must be positive")
        if exponent < 0:
            raise ValueError("exponent must be non-negative")
        if not isinstance(rng, np.random.Generator):
            rng = np.random.default_rng(rng)
        self.num_items = num_items
        self.exponent = exponent
        self._rng = rng
        self.items = (
            rng.permutation(num_items) if permute
            else np.arange(num_items)
        )
        weights = 1.0 / (np.arange(1, num_items + 1) ** exponent)
        self.probabilities = weights / weights.sum()

    def sample(self, size: Optional[int] = None) -> Union[int, np.ndarray]:
        """Draw one item id (``size=None``) or an array of ``size`` ids."""
        picked = self._rng.choice(
            self.num_items, size=size, p=self.probabilities
        )
        if size is None:
            return int(self.items[picked])
        return self.items[picked]

    def rank_probability(self, rank: int) -> float:
        """The probability mass of the item at 1-based ``rank``."""
        if not 1 <= rank <= self.num_items:
            raise ValueError(f"rank must be within [1, {self.num_items}]")
        return float(self.probabilities[rank - 1])

    def __repr__(self) -> str:
        return (
            f"ZipfSampler(num_items={self.num_items}, "
            f"exponent={self.exponent})"
        )
